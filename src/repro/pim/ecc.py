"""Error-correcting code substrate: Hamming SECDED and its costs.

Section 5.2: memories pair wear-leveling with ECC, and "the cost of ECC
can dominate the system performance when we deal with noisy memory
blocks".  One of RobustHD's selling points (Section 6.6) is that the HDC
representation plus self-recovery makes this machinery unnecessary.  To
*show* that, the reproduction needs a real ECC to compare against — both
its correction behaviour and its overhead.

This module implements Hamming(72,64) SECDED (the standard DRAM word
code) generically as SECDED over any power-of-two data width: single-bit
errors are corrected, double-bit errors are detected, and the storage
overhead, per-access energy and latency multipliers are exposed so the
DRAM/PIM efficiency models can charge for them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SECDED", "ECCStats", "DecodeResult"]


@dataclass
class ECCStats:
    """Counters across a decode campaign."""

    words: int = 0
    corrected: int = 0
    detected_uncorrectable: int = 0
    undetected: int = 0


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one codeword."""

    data: np.ndarray
    corrected: bool
    uncorrectable: bool


class SECDED:
    """Single-error-correct, double-error-detect Hamming code.

    Parameters
    ----------
    data_bits:
        Word width to protect; 64 gives the classic (72, 64) DRAM code.

    The code uses ``r`` parity bits with ``2**r >= data_bits + r + 1``
    plus one overall parity bit for the double-error detect.
    """

    def __init__(self, data_bits: int = 64) -> None:
        if data_bits < 1:
            raise ValueError("data_bits must be >= 1")
        self.data_bits = data_bits
        r = 0
        while (1 << r) < data_bits + r + 1:
            r += 1
        self.parity_bits = r
        self.code_bits = data_bits + r + 1  # +1 overall parity
        # Position map: codeword positions 1..(n-1) in classic Hamming
        # layout; powers of two hold parity, the rest hold data.
        n = data_bits + r
        self._data_pos = np.array(
            [p for p in range(1, n + 1) if p & (p - 1) != 0], dtype=np.int64
        )
        self._parity_pos = np.array([1 << i for i in range(r)], dtype=np.int64)

    @property
    def overhead(self) -> float:
        """Storage overhead fraction, e.g. 0.125 for (72, 64)."""
        return (self.code_bits - self.data_bits) / self.data_bits

    # Energy/latency multipliers relative to an unprotected access; the
    # syndrome XOR tree is charged per touched bit.
    @property
    def access_energy_multiplier(self) -> float:
        """Extra bits moved + syndrome logic per access."""
        return self.code_bits / self.data_bits * 1.10

    @property
    def access_latency_multiplier(self) -> float:
        """Decode sits on the read critical path."""
        return 1.25

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode a length-``data_bits`` 0/1 vector into a codeword."""
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (self.data_bits,):
            raise ValueError(
                f"expected {self.data_bits} data bits, got shape {data.shape}"
            )
        if ((data != 0) & (data != 1)).any():
            raise ValueError("data must be binary")
        n = self.data_bits + self.parity_bits
        word = np.zeros(n + 1, dtype=np.uint8)  # index 0 = overall parity
        word[self._data_pos] = data
        for i, p in enumerate(self._parity_pos):
            # Parity bit i covers positions with bit i set.
            covered = np.arange(1, n + 1)
            covered = covered[(covered & p) != 0]
            word[p] = np.bitwise_xor.reduce(word[covered]) ^ word[p]
        word[0] = np.bitwise_xor.reduce(word[1:])
        return word

    def decode(self, codeword: np.ndarray) -> DecodeResult:
        """Decode, correcting single flips and flagging double flips."""
        word = np.asarray(codeword, dtype=np.uint8).copy()
        n = self.data_bits + self.parity_bits
        if word.shape != (n + 1,):
            raise ValueError(f"expected {n + 1} code bits, got shape {word.shape}")
        syndrome = 0
        for i, p in enumerate(self._parity_pos):
            covered = np.arange(1, n + 1)
            covered = covered[(covered & p) != 0]
            if np.bitwise_xor.reduce(word[covered]):
                syndrome |= p
        overall = int(np.bitwise_xor.reduce(word))
        corrected = False
        uncorrectable = False
        if syndrome == 0 and overall == 0:
            pass  # clean
        elif overall == 1:
            # Odd number of flips; assume one and correct it.
            if syndrome == 0:
                word[0] ^= 1  # the overall parity bit itself flipped
            elif syndrome <= n:
                word[syndrome] ^= 1
            else:
                uncorrectable = True
            corrected = not uncorrectable
        else:
            # Even flips with nonzero syndrome: double error detected.
            uncorrectable = True
        return DecodeResult(
            data=word[self._data_pos].copy(),
            corrected=corrected,
            uncorrectable=uncorrectable,
        )

    def scrub(
        self,
        data_words: np.ndarray,
        error_rate: float,
        rng: np.random.Generator,
        stats: ECCStats | None = None,
    ) -> np.ndarray:
        """Encode, corrupt at ``error_rate``, decode a batch of words.

        Returns the recovered data ``(num_words, data_bits)``; useful for
        measuring residual error rates after ECC at a given raw error
        rate (the quantity that decides when ECC stops being enough).
        """
        data_words = np.atleast_2d(np.asarray(data_words, dtype=np.uint8))
        if data_words.shape[1] != self.data_bits:
            raise ValueError(
                f"expected words of {self.data_bits} bits, got "
                f"{data_words.shape[1]}"
            )
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError(f"error_rate must be in [0, 1], got {error_rate}")
        out = np.empty_like(data_words)
        for i, data in enumerate(data_words):
            code = self.encode(data)
            flips = rng.random(code.shape[0]) < error_rate
            code ^= flips.astype(np.uint8)
            result = self.decode(code)
            out[i] = result.data
            if stats is not None:
                stats.words += 1
                if result.corrected:
                    stats.corrected += 1
                if result.uncorrectable:
                    stats.detected_uncorrectable += 1
                elif (result.data != data).any():
                    stats.undetected += 1
        return out
