"""GPU reference cost model for the Figure 2 normalisation baseline.

The paper normalises PIM efficiency to a DNN running on an NVIDIA GTX
1080 through TensorFlow.  With no GPU in this reproduction, the baseline
is an analytic roofline-style model built from the public spec sheet:

* peak arithmetic throughput and board power from the 1080 datasheet;
* an *effective utilisation* factor, because small dense classifiers
  reach a few percent of peak on a big GPU (kernel launch overhead,
  low arithmetic intensity);
* a memory-bandwidth ceiling — every inference streams the weight
  matrix, so throughput is also bounded by ``bandwidth / model_bytes``.

The utilisation constants are calibration inputs, documented here and in
EXPERIMENTS.md; Figure 2's claims are *ratios* (PIM vs GPU, HDC vs DNN),
and the reproduced quantity is the shape of those ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUConfig", "GPUModel", "GTX_1080"]


@dataclass(frozen=True)
class GPUConfig:
    """Spec-sheet constants plus effective-utilisation calibration."""

    name: str = "GTX 1080"
    peak_ops_per_s: float = 8.9e12
    board_power_w: float = 180.0
    memory_bandwidth_bps: float = 320e9
    compute_utilization: float = 0.10
    bandwidth_utilization: float = 0.6
    # Fixed per-batch overhead (kernel launches, host sync).
    launch_overhead_s: float = 20e-6
    batch_size: int = 256

    def __post_init__(self) -> None:
        if self.peak_ops_per_s <= 0 or self.board_power_w <= 0:
            raise ValueError("peak_ops_per_s and board_power_w must be > 0")
        if not 0 < self.compute_utilization <= 1:
            raise ValueError("compute_utilization must be in (0, 1]")
        if not 0 < self.bandwidth_utilization <= 1:
            raise ValueError("bandwidth_utilization must be in (0, 1]")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")


GTX_1080 = GPUConfig()


class GPUModel:
    """Roofline latency/energy estimates for dense inference workloads."""

    def __init__(self, config: GPUConfig = GTX_1080) -> None:
        self.config = config

    def inference_latency_s(self, ops: float, model_bytes: float) -> float:
        """Per-inference latency at the configured batch size.

        The batch pays max(compute time, weight-streaming time) plus the
        launch overhead, then amortises over its inferences.
        """
        if ops <= 0 or model_bytes <= 0:
            raise ValueError("ops and model_bytes must be > 0")
        cfg = self.config
        compute_s = (
            ops * cfg.batch_size / (cfg.peak_ops_per_s * cfg.compute_utilization)
        )
        # Weights are streamed once per batch (they stay in cache across
        # the batch); activations are negligible for these model sizes.
        memory_s = model_bytes / (
            cfg.memory_bandwidth_bps * cfg.bandwidth_utilization
        )
        return (max(compute_s, memory_s) + cfg.launch_overhead_s) / cfg.batch_size

    def inference_energy_j(self, ops: float, model_bytes: float) -> float:
        """Per-inference energy: board power times the occupied latency."""
        return self.inference_latency_s(ops, model_bytes) * self.config.board_power_w

    def dnn_ops(self, layer_widths: list[int]) -> float:
        """Multiply-accumulate op count (2 ops per MAC) of a dense net."""
        if len(layer_widths) < 2:
            raise ValueError("need at least input and output layer widths")
        return float(
            sum(2 * a * b for a, b in zip(layer_widths[:-1], layer_widths[1:]))
        )

    def hdc_ops(self, num_features: int, dim: int, num_classes: int) -> float:
        """Op count of HDC encode + classify executed as dense GPU kernels.

        Encoding is a ``num_features x dim`` binary accumulate; inference
        is a ``num_classes x dim`` XOR-popcount, both executed as 1
        op/element passes on a GPU.
        """
        if min(num_features, dim, num_classes) < 1:
            raise ValueError("workload sizes must be >= 1")
        return float(num_features * dim + 2 * num_classes * dim)

    def hdc_packed_classify_ops(self, dim: int, num_classes: int) -> float:
        """Word-level op count of one bit-packed classify step.

        The packed serving engine (:mod:`repro.core.packed`) executes
        ``ceil(dim / 64)`` 64-bit words per class: one XOR and one
        popcount per word (``packed_popcount`` is a single hardware
        instruction per word on any machine this runs on).  Dividing a
        measured ``BENCH_serving.json`` throughput into this count gives
        effective word-ops/s, comparable against the roofline the dense
        ``hdc_ops`` baseline implies.
        """
        if min(dim, num_classes) < 1:
            raise ValueError("workload sizes must be >= 1")
        words = -(-dim // 64)
        return float(2 * num_classes * words)

    def packed_classify_qps(self, dim: int, num_classes: int) -> float:
        """Predicted queries/s of the bit-packed classify kernel.

        The roofline counterpart of a real kernel backend's measured
        ``distance_table`` throughput: word ops from
        :meth:`hdc_packed_classify_ops`, model bytes from the packed
        word matrix.  ``repro.core.kernels.roofline_validation``
        divides a measured rate by this prediction — that ratio is the
        cross-link between this analytic model and the real substrate.
        """
        ops = self.hdc_packed_classify_ops(dim, num_classes)
        model_bytes = num_classes * (-(-dim // 64)) * 8
        return 1.0 / self.inference_latency_s(ops, model_bytes)
