"""Processing-in-memory substrate: devices, crossbar, costs, lifetime."""

from repro.pim.crossbar import Crossbar, OpCost
from repro.pim.dpim import DPIM, DPIMConfig
from repro.pim.dram import DEFAULT_DRAM, DRAMConfig, DRAMModel
from repro.pim.ecc import SECDED, DecodeResult, ECCStats
from repro.pim.endurance import (
    SECONDS_PER_YEAR,
    LifetimePoint,
    LifetimeProjector,
    WearTracker,
)
from repro.pim.gpu import GTX_1080, GPUConfig, GPUModel
from repro.pim.mapping import (
    Placement,
    map_dnn_model,
    map_hdc_model,
    wear_tracker_for,
    writes_per_cell_per_inference,
)
from repro.pim.nvm import DEFAULT_DEVICE, NVMDevice, WearModel

__all__ = [
    "Crossbar",
    "DEFAULT_DEVICE",
    "DEFAULT_DRAM",
    "DPIM",
    "DPIMConfig",
    "DRAMConfig",
    "DRAMModel",
    "DecodeResult",
    "ECCStats",
    "GPUConfig",
    "GPUModel",
    "GTX_1080",
    "LifetimePoint",
    "LifetimeProjector",
    "NVMDevice",
    "OpCost",
    "Placement",
    "SECDED",
    "SECONDS_PER_YEAR",
    "WearModel",
    "WearTracker",
    "map_dnn_model",
    "map_hdc_model",
    "wear_tracker_for",
    "writes_per_cell_per_inference",
]
