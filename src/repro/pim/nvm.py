"""Non-volatile memory (memristor) device model.

The paper's DPIM platform is built on bipolar resistive devices modelled
with VTEAM parameters, tuned for "a switching delay of 1ns, a voltage
pulse of 1V and 2V for RESET and SET operations" (Section 6.1) and an
endurance of 10^9 writes (Section 6.5, citing [2]).  HSPICE gave the
authors per-operation energy; here the same role is played by a small set
of device constants from which the architecture model derives cycle and
energy costs analytically.

Two classes:

* :class:`NVMDevice` — the constants of one device corner, with derived
  per-event energies.
* :class:`WearModel` — the stochastic endurance process: each cell fails
  (sticks) after an individually drawn lifetime around the nominal
  endurance; given a per-cell write count, it yields the expected (or
  sampled) fraction of dead cells, which the lifetime experiments turn
  into a model bit-error rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy import floating

__all__ = ["NVMDevice", "WearModel", "DEFAULT_DEVICE"]


@dataclass(frozen=True)
class NVMDevice:
    """Device-corner constants of a bipolar resistive (VTEAM-style) cell.

    Attributes
    ----------
    switching_delay_s:
        Time for one SET/RESET transition; the paper tunes the VTEAM
        model to 1 ns, which also sets the in-memory NOR cycle time.
    set_voltage_v / reset_voltage_v:
        Programming pulse amplitudes (2 V SET / 1 V RESET per the paper).
    r_on_ohm / r_off_ohm:
        Low / high resistance states.
    endurance_writes:
        Nominal switching endurance (10^9 in the evaluation).
    endurance_sigma:
        Lognormal sigma of per-cell endurance variability.  Real
        filamentary RRAM endurance spreads over one to two decades of
        write counts across a die; 1.2 puts ~1% of cells below
        ``endurance / 16``, which is what makes weak-cell failures appear
        long before the nominal endurance is reached.
    read_energy_j:
        Energy to sense one cell.
    """

    switching_delay_s: float = 1e-9
    set_voltage_v: float = 2.0
    reset_voltage_v: float = 1.0
    r_on_ohm: float = 10e3
    r_off_ohm: float = 10e6
    endurance_writes: float = 1e9
    endurance_sigma: float = 1.2
    read_energy_j: float = 0.05e-12

    def __post_init__(self) -> None:
        if self.switching_delay_s <= 0:
            raise ValueError("switching_delay_s must be > 0")
        if self.r_off_ohm <= self.r_on_ohm:
            raise ValueError("need r_off_ohm > r_on_ohm")
        if self.endurance_writes <= 0:
            raise ValueError("endurance_writes must be > 0")
        if self.endurance_sigma < 0:
            raise ValueError("endurance_sigma must be >= 0")

    @property
    def set_energy_j(self) -> float:
        """Energy of one SET transition, ``V^2 / R_on * t_switch``.

        The SET current flows through the device as it drops to the low
        resistance state; using ``R_on`` upper-bounds the dissipation,
        which is the convention cost models take for this device class.
        """
        return self.set_voltage_v**2 / self.r_on_ohm * self.switching_delay_s

    @property
    def reset_energy_j(self) -> float:
        """Energy of one RESET transition, ``V^2 / R_on * t_switch``."""
        return self.reset_voltage_v**2 / self.r_on_ohm * self.switching_delay_s

    @property
    def write_energy_j(self) -> float:
        """Average energy of one write, assuming balanced SET/RESET traffic."""
        return 0.5 * (self.set_energy_j + self.reset_energy_j)


DEFAULT_DEVICE = NVMDevice()


class WearModel:
    """Stochastic endurance: cells die after individually drawn lifetimes.

    Each cell's endurance is lognormal around the nominal value:
    ``lifetime = endurance_writes * exp(sigma * Z)``, ``Z ~ N(0, 1)``.
    With ``sigma = 0`` every cell fails at exactly the nominal count.

    The *failure fraction* at a given per-cell write count is the CDF of
    that lognormal — this is the quantity the lifetime experiments
    translate into a model bit-error rate (a dead cell sticks at a value
    that is wrong for half of the bits written through it on average, so
    ``bit_error_rate = 0.5 * failure_fraction`` unless the caller models
    stuck-at polarity itself).
    """

    def __init__(self, device: NVMDevice = DEFAULT_DEVICE) -> None:
        self.device = device

    def failure_fraction(self, writes_per_cell: float | np.ndarray) -> np.ndarray | floating:
        """Expected fraction of dead cells after ``writes_per_cell`` writes."""
        writes = np.asarray(writes_per_cell, dtype=np.float64)
        if (writes < 0).any():
            raise ValueError("writes_per_cell must be >= 0")
        nominal = self.device.endurance_writes
        sigma = self.device.endurance_sigma
        with np.errstate(divide="ignore"):
            if sigma == 0:
                frac = (writes >= nominal).astype(np.float64)
            else:
                z = np.log(np.maximum(writes, 1e-300) / nominal) / sigma
                frac = _norm_cdf(z)
                frac = np.where(writes == 0, 0.0, frac)
        return frac if frac.shape else float(frac)

    def bit_error_rate(self, writes_per_cell: float | np.ndarray) -> np.ndarray | floating:
        """Model bit-error rate: a dead cell corrupts half the bits it holds."""
        frac = np.asarray(self.failure_fraction(writes_per_cell))
        out = 0.5 * frac
        return out if out.shape else float(out)

    def sample_failures(
        self,
        num_cells: int,
        writes_per_cell: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Boolean mask of which of ``num_cells`` cells have failed."""
        if num_cells < 1:
            raise ValueError("num_cells must be >= 1")
        if writes_per_cell < 0:
            raise ValueError("writes_per_cell must be >= 0")
        sigma = self.device.endurance_sigma
        nominal = self.device.endurance_writes
        if sigma == 0:
            lifetimes = np.full(num_cells, nominal)
        else:
            lifetimes = nominal * np.exp(sigma * rng.standard_normal(num_cells))
        return writes_per_cell >= lifetimes

    def writes_until_failure_fraction(self, fraction: float) -> float:
        """Per-cell write count at which the given fraction of cells is dead.

        Inverse of :meth:`failure_fraction`; used to convert an accuracy
        budget ("tolerate at most X% bit errors") into a lifetime.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        sigma = self.device.endurance_sigma
        nominal = self.device.endurance_writes
        if sigma == 0:
            return nominal
        return float(nominal * np.exp(sigma * _norm_ppf(fraction)))


def _norm_cdf(z: np.ndarray) -> np.ndarray:
    """Standard normal CDF via erf (numpy-only, no scipy dependency here)."""
    from math import sqrt

    return 0.5 * (1.0 + _erf(z / sqrt(2.0)))


def _erf(x: np.ndarray) -> np.ndarray:
    """Vectorised erf (Abramowitz-Stegun 7.1.26, |err| < 1.5e-7)."""
    x = np.asarray(x, dtype=np.float64)
    sign = np.sign(x)
    ax = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return sign * (1.0 - poly * np.exp(-ax * ax))


def _norm_ppf(p: float) -> float:
    """Standard normal quantile by bisection on the CDF (scalar)."""
    lo, hi = -10.0, 10.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if float(_norm_cdf(np.asarray(mid))) < p:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
