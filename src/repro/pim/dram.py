"""DRAM refresh-relaxation model (paper Section 6.6, Figure 4b).

DRAM spends a major fraction of its power refreshing decaying cells
every 64 ms.  Relaxing the refresh interval saves that power but lets
the weakest cells drop bits — harmless for an HDC model, catastrophic
for conventional weights.  Figure 4b quantifies the trade: refresh
relaxed until the raw error rate is 4% (6%) buys ~14% (22%) energy
efficiency.

Model components:

* **Retention tail.**  Within the guaranteed 64 ms interval no cell
  leaks; past it, weak cells fail with a Weibull tail
  ``P(t) = 1 - exp(-((t - t0) / lambda_ms) ** k)``.  The default shape
  and scale are calibrated so the error-rate-vs-interval curve passes
  through the paper's two quoted operating points (see
  ``DEFAULT_DRAM`` and EXPERIMENTS.md).
* **Energy.**  Refresh consumes ``refresh_energy_fraction`` of DRAM
  energy at the 64 ms baseline and scales inversely with the interval;
  the rest of the energy is interval-independent.  Efficiency
  improvement is the reciprocal energy ratio minus one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DRAMConfig", "DRAMModel", "DEFAULT_DRAM"]


@dataclass(frozen=True)
class DRAMConfig:
    """Retention-tail and refresh-energy constants."""

    base_interval_ms: float = 64.0
    refresh_energy_fraction: float = 0.25
    weibull_shape: float = 0.423
    weibull_scale_ms: float = 119_000.0

    def __post_init__(self) -> None:
        if self.base_interval_ms <= 0:
            raise ValueError("base_interval_ms must be > 0")
        if not 0.0 < self.refresh_energy_fraction < 1.0:
            raise ValueError("refresh_energy_fraction must be in (0, 1)")
        if self.weibull_shape <= 0 or self.weibull_scale_ms <= 0:
            raise ValueError("Weibull parameters must be > 0")


DEFAULT_DRAM = DRAMConfig()


class DRAMModel:
    """Error-rate and energy consequences of a relaxed refresh interval."""

    def __init__(self, config: DRAMConfig = DEFAULT_DRAM) -> None:
        self.config = config

    def error_rate(self, interval_ms: float | np.ndarray) -> np.ndarray | float:
        """Raw bit-error rate when refreshing every ``interval_ms``."""
        t = np.asarray(interval_ms, dtype=np.float64)
        if (t <= 0).any():
            raise ValueError("interval_ms must be > 0")
        cfg = self.config
        excess = np.maximum(t - cfg.base_interval_ms, 0.0)
        rate = 1.0 - np.exp(-((excess / cfg.weibull_scale_ms) ** cfg.weibull_shape))
        return rate if rate.shape else float(rate)

    def interval_for_error_rate(self, target_rate: float) -> float:
        """Refresh interval producing a given raw error rate (inverse)."""
        if not 0.0 < target_rate < 1.0:
            raise ValueError("target_rate must be in (0, 1)")
        cfg = self.config
        excess = cfg.weibull_scale_ms * (-np.log(1.0 - target_rate)) ** (
            1.0 / cfg.weibull_shape
        )
        return float(cfg.base_interval_ms + excess)

    def relative_energy(self, interval_ms: float | np.ndarray) -> np.ndarray | float:
        """Energy per unit work relative to the 64 ms baseline (<= 1)."""
        t = np.asarray(interval_ms, dtype=np.float64)
        if (t < self.config.base_interval_ms).any():
            raise ValueError(
                "interval_ms must be >= the base refresh interval"
            )
        f = self.config.refresh_energy_fraction
        energy = (1.0 - f) + f * self.config.base_interval_ms / t
        return energy if energy.shape else float(energy)

    def efficiency_improvement(
        self, interval_ms: float | np.ndarray
    ) -> np.ndarray | float:
        """Energy-efficiency gain over the 64 ms baseline (0 at baseline)."""
        energy = np.asarray(self.relative_energy(interval_ms))
        gain = 1.0 / energy - 1.0
        return gain if gain.shape else float(gain)

    def efficiency_at_error_rate(self, target_rate: float) -> float:
        """Efficiency gain at the interval that yields ``target_rate`` errors.

        This is the Figure 4b x-to-y mapping: e.g. a 4% error rate should
        return ~0.14 with the default calibration.
        """
        return float(
            np.asarray(
                self.efficiency_improvement(
                    self.interval_for_error_rate(target_rate)
                )
            )
        )
