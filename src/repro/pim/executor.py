"""Functional PIM execution: real HDC inference through the NOR crossbar.

:mod:`repro.pim.dpim` prices kernels analytically; this module *runs*
them.  An :class:`HDCExecutor` lays an HDC model out on
:class:`~repro.pim.crossbar.Crossbar` tiles and classifies queries using
nothing but the crossbar's own primitives — in-memory XOR for the
binding/distance step and an in-memory ripple popcount for the
reduction — then reads out the per-class counts through the sense
amplifiers.

Two purposes:

* **functional validation** — the executor's predictions must equal the
  numpy reference model's (tested in ``tests/pim/test_executor.py``),
  which pins the gate mappings (XOR = 5 NORs, full adder = 9 NORs) to
  real logic rather than constants in a cost table;
* **cost cross-check** — the crossbar meters every executed gate, so the
  measured cycles/writes of a real (small) inference can be compared
  with the analytic model's prediction for the same shape.

Layout: one tile per class; the class hypervector occupies column 0,
the query is broadcast into column 1, XOR lands in column 2, and the
popcount accumulates through a bit-serial counter in the remaining
columns.  Dimensions map to rows; models wider than a tile's rows use
multiple row groups ("folds") accumulated sequentially.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import HDCModel
from repro.obs.metrics import current as _metrics
from repro.pim.crossbar import Crossbar, OpCost
from repro.pim.nvm import DEFAULT_DEVICE, NVMDevice

__all__ = ["HDCExecutor"]


class HDCExecutor:
    """Execute 1-bit HDC inference on functional crossbar tiles.

    Parameters
    ----------
    model:
        A binary :class:`~repro.core.model.HDCModel`.
    tile_rows:
        Rows per crossbar tile; the model folds over row groups if
        ``dim > tile_rows``.
    device:
        NVM corner used for the tiles' energy metering.
    """

    # Column roles within a tile.
    _COL_CLASS = 0
    _COL_QUERY = 1
    _COL_XOR = 2
    _SCRATCH = (3, 4, 5)
    _NUM_COLS = 6

    def __init__(
        self,
        model: HDCModel,
        tile_rows: int = 1024,
        device: NVMDevice = DEFAULT_DEVICE,
    ) -> None:
        if model.bits != 1:
            raise ValueError("HDCExecutor requires a 1-bit model")
        if tile_rows < 1:
            raise ValueError(f"tile_rows must be >= 1, got {tile_rows}")
        self.model = model
        self.tile_rows = min(tile_rows, model.dim)
        self.folds = -(-model.dim // self.tile_rows)
        self.tiles = [
            Crossbar(self.tile_rows, self._NUM_COLS, device=device)
            for _ in range(model.num_classes)
        ]

    def _fold_slice(self, fold: int) -> slice:
        start = fold * self.tile_rows
        return slice(start, min(start + self.tile_rows, self.model.dim))

    def _padded(self, bits: np.ndarray) -> np.ndarray:
        """Pad a fold's bits up to the tile height with zeros."""
        if bits.shape[0] == self.tile_rows:
            return bits
        out = np.zeros(self.tile_rows, dtype=np.uint8)
        out[: bits.shape[0]] = bits
        return out

    def classify(self, query: np.ndarray) -> int:
        """Classify one binary query entirely through crossbar primitives.

        For each class tile and each fold: program the class and query
        fold columns, run the 5-NOR XOR, and read the XOR column out
        through the sense amplifiers into a per-class mismatch count
        (the peripheral popcount every PIM design implements next to the
        array).  The label is the class with the fewest mismatches.
        """
        query = np.asarray(query, dtype=np.uint8)
        if query.ndim != 1 or query.shape[0] != self.model.dim:
            raise ValueError(
                f"query must be a 1-D vector of length {self.model.dim}"
            )
        distances = np.zeros(self.model.num_classes, dtype=np.int64)
        for c, tile in enumerate(self.tiles):
            for fold in range(self.folds):
                rows = self._fold_slice(fold)
                tile.write_column(
                    self._COL_CLASS, self._padded(self.model.class_hv[c, rows])
                )
                tile.write_column(self._COL_QUERY, self._padded(query[rows]))
                tile.xor(
                    self._COL_CLASS, self._COL_QUERY, self._COL_XOR,
                    self._SCRATCH,
                )
                distances[c] += int(tile.read_column(self._COL_XOR).sum())
        metrics = _metrics()
        if metrics.enabled:
            metrics.inc("pim.classifications")
            metrics.inc(
                "pim.folds_executed", self.model.num_classes * self.folds
            )
        return int(np.argmin(distances))

    def classify_batch(self, queries: np.ndarray) -> np.ndarray:
        """Classify a batch ``(b, D)``; returns int64 labels."""
        queries = np.atleast_2d(queries)
        with _metrics().timer("pim.classify_batch"):
            return np.array(
                [self.classify(q) for q in queries], dtype=np.int64
            )

    @property
    def cost(self) -> OpCost:
        """Total metered cost across all tiles since construction."""
        total = OpCost()
        for tile in self.tiles:
            total += tile.cost
        return total

    def max_writes_per_cell(self) -> int:
        """Hottest cell's write count — the executor-level wear signal."""
        return int(max(tile.write_counts.max() for tile in self.tiles))
