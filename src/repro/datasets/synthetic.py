"""Seeded synthetic classification tasks standing in for Table 2 datasets.

The paper evaluates on MNIST / UCI HAR / ISOLET / FACE / PAMAP / PECAN.
This reproduction runs with no network access, so each dataset is replaced
by a synthetic task with the *same feature count, class count and a
comparable achievable accuracy* (see DESIGN.md, Substitutions).  The
robustness results we reproduce measure relative quality loss under
bit-level damage, which is a property of the representation and error
rate, not of the data provenance — matched-shape synthetic tasks exercise
the identical code paths.

Two generators are provided.

:func:`make_prototype_classification` (the one the Table 2 profiles use)
mirrors the geometry HDC sees on real sensory data: each class has a
feature *prototype* and samples are a mixture of

* **core** samples — the prototype plus small per-feature noise.  In
  hypervector space these encode almost identically, giving the high
  within-class compactness real datasets show (most MNIST pixels are
  deterministic given the digit), which is what makes unsupervised
  recovery stable; and
* **boundary** samples — interpolations toward another class's prototype.
  These sit near decision boundaries with small margins and are the
  queries that actually flip when the stored model takes bit damage,
  producing the paper's few-percent quality losses.

Class prototypes share a common backbone (``1 - prototype_spread`` of
each feature) so features correlate across classes like real sensor
channels, while the spread keeps encoded class hypervectors far enough
apart that one class's repair cannot out-score another class's own
prototype — the geometry requirement for stable self-recovery (see
DESIGN.md).

:func:`make_classification` is a classic Gaussian-mixture generator
(latent centroids, anisotropic noise, nonlinear mixing) kept for unit
tests and as a harder-margin alternative workload.

Both normalise features to ``[0, 1]`` and are fully seeded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Dataset", "make_classification", "make_prototype_classification"]


@dataclass(frozen=True)
class Dataset:
    """A train/test split of a classification task.

    Features are float64 in ``[0, 1]`` (test data may poke slightly
    outside after train-statistics normalisation; the encoder clips).
    """

    name: str
    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    def __post_init__(self) -> None:
        if self.train_x.ndim != 2 or self.test_x.ndim != 2:
            raise ValueError("feature matrices must be 2-D")
        if self.train_x.shape[0] != self.train_y.shape[0]:
            raise ValueError("train features/labels disagree on sample count")
        if self.test_x.shape[0] != self.test_y.shape[0]:
            raise ValueError("test features/labels disagree on sample count")
        if self.train_x.shape[1] != self.test_x.shape[1]:
            raise ValueError("train/test feature width mismatch")

    @property
    def num_features(self) -> int:
        return self.train_x.shape[1]

    @property
    def num_classes(self) -> int:
        return int(max(self.train_y.max(), self.test_y.max())) + 1

    @property
    def num_train(self) -> int:
        return self.train_x.shape[0]

    @property
    def num_test(self) -> int:
        return self.test_x.shape[0]


def make_prototype_classification(
    name: str,
    num_features: int,
    num_classes: int,
    num_train: int,
    num_test: int,
    prototype_spread: float = 0.8,
    within_noise: float = 0.02,
    boundary_fraction: float = 0.3,
    boundary_depth: tuple[float, float] = (0.25, 0.55),
    seed: int = 0,
) -> Dataset:
    """Generate a prototype + boundary-mixture classification task.

    Parameters
    ----------
    name:
        Task label carried into result tables.
    num_features, num_classes, num_train, num_test:
        Shape of the task.
    prototype_spread:
        Fraction of each feature that is class-specific; the remaining
        ``1 - prototype_spread`` is a backbone shared by all classes
        (cross-class feature correlation).  Larger values push encoded
        class hypervectors further apart.
    within_noise:
        Per-feature Gaussian noise sigma on every sample.  Small values
        (relative to the encoder's quantisation bin, ``1/levels``) give
        the high per-dimension certainty that stabilises recovery.
    boundary_fraction:
        Fraction of samples interpolated toward another class.
    boundary_depth:
        ``(lo, hi)`` interpolation range; samples near ``t = 0.5`` are
        genuinely ambiguous and supply both the clean error rate and the
        attack-induced quality loss.
    seed:
        Master seed.
    """
    if num_features < 1:
        raise ValueError(f"num_features must be >= 1, got {num_features}")
    if num_classes < 2:
        raise ValueError(f"num_classes must be >= 2, got {num_classes}")
    if num_train < num_classes or num_test < 1:
        raise ValueError(
            "need at least one training sample per class and one test sample"
        )
    if not 0.0 < prototype_spread <= 1.0:
        raise ValueError(
            f"prototype_spread must be in (0, 1], got {prototype_spread}"
        )
    if within_noise < 0:
        raise ValueError(f"within_noise must be >= 0, got {within_noise}")
    if not 0.0 <= boundary_fraction <= 1.0:
        raise ValueError(
            f"boundary_fraction must be in [0, 1], got {boundary_fraction}"
        )
    lo, hi = boundary_depth
    if not 0.0 <= lo <= hi <= 1.0:
        raise ValueError(f"boundary_depth must satisfy 0 <= lo <= hi <= 1")
    rng = np.random.default_rng(seed)
    backbone = rng.uniform(0.0, 1.0, num_features)
    prototypes = (
        prototype_spread * rng.uniform(0.0, 1.0, (num_classes, num_features))
        + (1.0 - prototype_spread) * backbone[None, :]
    )

    def sample(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        x = prototypes[labels].copy()
        num_boundary = int(round(boundary_fraction * count))
        if num_boundary:
            idx = rng.choice(count, size=num_boundary, replace=False)
            # Interpolate toward a uniformly chosen *different* class.
            other = (
                labels[idx] + rng.integers(1, num_classes, size=num_boundary)
            ) % num_classes
            t = rng.uniform(lo, hi, size=num_boundary)[:, None]
            x[idx] = (1.0 - t) * prototypes[labels[idx]] + t * prototypes[other]
        x += rng.normal(0.0, within_noise, size=x.shape)
        return np.clip(x, 0.0, 1.0), labels

    train_x, train_y = sample(num_train)
    test_x, test_y = sample(num_test)
    return Dataset(
        name=name,
        train_x=train_x,
        train_y=train_y.astype(np.int64),
        test_x=test_x,
        test_y=test_y.astype(np.int64),
    )


def make_classification(
    name: str,
    num_features: int,
    num_classes: int,
    num_train: int,
    num_test: int,
    separation: float = 2.0,
    latent_dim: int | None = None,
    noise: float = 1.0,
    nonlinearity: float = 0.5,
    seed: int = 0,
) -> Dataset:
    """Generate a seeded Gaussian-mixture classification task.

    Parameters
    ----------
    name:
        Task label carried into result tables.
    num_features, num_classes, num_train, num_test:
        Shape of the task.
    separation:
        Distance scale between class centroids in the latent space;
        larger means easier.  Values around 1.5-3.0 give the 85-97%
        baseline accuracies the paper's datasets sit at.
    latent_dim:
        Dimensionality of the latent class structure; defaults to
        ``min(num_features, max(8, 2 * num_classes))``.  Features are a
        mixed expansion of this latent space.
    noise:
        Within-class standard deviation in the latent space.
    nonlinearity:
        Blend factor in ``(1 - a) * linear + a * tanh(linear)``; 0 keeps
        the task linear.
    seed:
        Master seed; every artefact of the task derives from it.
    """
    if num_features < 1:
        raise ValueError(f"num_features must be >= 1, got {num_features}")
    if num_classes < 2:
        raise ValueError(f"num_classes must be >= 2, got {num_classes}")
    if num_train < num_classes or num_test < 1:
        raise ValueError(
            "need at least one training sample per class and one test sample"
        )
    if not 0.0 <= nonlinearity <= 1.0:
        raise ValueError(f"nonlinearity must be in [0, 1], got {nonlinearity}")
    rng = np.random.default_rng(seed)
    if latent_dim is None:
        latent_dim = min(num_features, max(8, 2 * num_classes))

    centroids = rng.normal(0.0, separation, size=(num_classes, latent_dim))
    # Anisotropic within-class spread, shared across classes.
    axis_scales = rng.uniform(0.5, 1.5, size=latent_dim) * noise
    # Low-rank common factors to correlate features.
    num_factors = max(1, latent_dim // 4)
    factor_load = rng.normal(0.0, 0.3, size=(num_factors, latent_dim))
    mixing = rng.normal(
        0.0, 1.0 / np.sqrt(latent_dim), size=(latent_dim, num_features)
    )

    def sample(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        latent = centroids[labels] + rng.normal(
            0.0, 1.0, size=(count, latent_dim)
        ) * axis_scales
        factors = rng.normal(0.0, 1.0, size=(count, num_factors))
        latent = latent + factors @ factor_load
        linear = latent @ mixing
        visible = (1.0 - nonlinearity) * linear + nonlinearity * np.tanh(linear)
        return visible, labels

    train_x, train_y = sample(num_train)
    test_x, test_y = sample(num_test)

    lo = train_x.min(axis=0)
    hi = train_x.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    train_x = (train_x - lo) / span
    test_x = np.clip((test_x - lo) / span, 0.0, 1.0)

    return Dataset(
        name=name,
        train_x=train_x,
        train_y=train_y.astype(np.int64),
        test_x=test_x,
        test_y=test_y.astype(np.int64),
    )
