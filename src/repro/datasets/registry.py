"""Registry of the six Table 2 dataset profiles.

Each profile records the published shape of a dataset the paper evaluates
on (feature count ``n``, class count ``k``, train/test sizes) together
with the synthetic-generator difficulty (boundary-sample mixture — see
:func:`repro.datasets.synthetic.make_prototype_classification`) chosen so
the clean-model accuracy and attack-induced quality losses land in the
band the paper reports for that dataset.  The full published sample
counts are kept for reference; ``load`` caps them (laptop-scale
benchmarking does not need 611k PAMAP rows to measure a quality-loss
delta).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.synthetic import Dataset, make_prototype_classification

__all__ = ["DatasetProfile", "PROFILES", "DATASET_NAMES", "load", "load_all"]


@dataclass(frozen=True)
class DatasetProfile:
    """Published shape + synthetic difficulty of one Table 2 dataset."""

    name: str
    description: str
    num_features: int
    num_classes: int
    full_train: int
    full_test: int
    boundary_fraction: float
    boundary_hi: float
    seed: int
    prototype_spread: float = 0.8
    within_noise: float = 0.02
    boundary_lo: float = 0.25

    def generate(self, num_train: int, num_test: int) -> Dataset:
        """Build the synthetic stand-in at the requested scale."""
        return make_prototype_classification(
            name=self.name,
            num_features=self.num_features,
            num_classes=self.num_classes,
            num_train=num_train,
            num_test=num_test,
            prototype_spread=self.prototype_spread,
            within_noise=self.within_noise,
            boundary_fraction=self.boundary_fraction,
            boundary_depth=(self.boundary_lo, self.boundary_hi),
            seed=self.seed,
        )


# Shapes from Table 2 of the paper; boundary mixture tuned so the clean
# accuracy and the quality-loss-vs-error-rate band of each task match the
# corresponding dataset's rows in Tables 1/3/4 (see EXPERIMENTS.md).
PROFILES: dict[str, DatasetProfile] = {
    "mnist": DatasetProfile(
        name="mnist",
        description="Handwritten digit recognition (MNIST shape)",
        num_features=784,
        num_classes=10,
        full_train=60_000,
        full_test=10_000,
        boundary_fraction=0.5,
        boundary_hi=0.48,
        boundary_lo=0.3,
        seed=101,
    ),
    "ucihar": DatasetProfile(
        name="ucihar",
        description="Smartphone human activity recognition (UCI HAR shape)",
        num_features=561,
        num_classes=12,
        full_train=6_213,
        full_test=1_554,
        boundary_fraction=0.6,
        boundary_hi=0.5,
        boundary_lo=0.32,
        seed=102,
    ),
    "isolet": DatasetProfile(
        name="isolet",
        description="Spoken letter recognition (ISOLET shape)",
        num_features=617,
        num_classes=26,
        full_train=6_238,
        full_test=1_559,
        boundary_fraction=0.6,
        boundary_hi=0.5,
        boundary_lo=0.32,
        seed=103,
    ),
    "face": DatasetProfile(
        name="face",
        description="Face / non-face image recognition (FACE shape)",
        num_features=608,
        num_classes=2,
        full_train=522_441,
        full_test=2_494,
        boundary_fraction=0.6,
        boundary_hi=0.5,
        boundary_lo=0.32,
        seed=104,
    ),
    "pamap": DatasetProfile(
        name="pamap",
        description="IMU activity monitoring (PAMAP2 shape)",
        num_features=75,
        num_classes=5,
        full_train=611_142,
        full_test=101_582,
        boundary_fraction=0.7,
        boundary_hi=0.52,
        boundary_lo=0.35,
        within_noise=0.01,
        seed=105,
    ),
    "pecan": DatasetProfile(
        name="pecan",
        description="Urban electricity usage prediction (Pecan Street shape)",
        num_features=312,
        num_classes=3,
        full_train=22_290,
        full_test=5_574,
        boundary_fraction=0.6,
        boundary_hi=0.52,
        boundary_lo=0.35,
        seed=106,
    ),
}

DATASET_NAMES: tuple[str, ...] = tuple(PROFILES)


def load(
    name: str, max_train: int = 2_000, max_test: int = 500
) -> Dataset:
    """Load a Table 2 stand-in, capped to a laptop-friendly scale.

    ``max_train`` / ``max_test`` bound the generated sample counts; pass
    large values to approach the published sizes.
    """
    key = name.lower()
    if key not in PROFILES:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(PROFILES)}"
        )
    profile = PROFILES[key]
    return profile.generate(
        num_train=min(profile.full_train, max_train),
        num_test=min(profile.full_test, max_test),
    )


def load_all(max_train: int = 2_000, max_test: int = 500) -> list[Dataset]:
    """All six Table 2 stand-ins, in registry order."""
    return [load(name, max_train, max_test) for name in DATASET_NAMES]
