"""Synthetic dataset substrate matching the paper's Table 2 profiles."""

from repro.datasets.registry import (
    DATASET_NAMES,
    PROFILES,
    DatasetProfile,
    load,
    load_all,
)
from repro.datasets.synthetic import (
    Dataset,
    make_classification,
    make_prototype_classification,
)

__all__ = [
    "DATASET_NAMES",
    "Dataset",
    "DatasetProfile",
    "PROFILES",
    "load",
    "load_all",
    "make_classification",
    "make_prototype_classification",
]
