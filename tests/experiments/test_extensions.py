"""Smoke tests for the extension experiments."""

import numpy as np
import pytest

from repro.experiments import continuous, ecc_comparison
from repro.pim.ecc import SECDED


class TestContinuous:
    def test_runs_and_renders(self):
        result = continuous.run(
            "smoke", per_pass_rate=0.01, num_passes=3
        )
        assert len(result.accuracy_none) == 3
        assert len(result.accuracy_default) == 3
        assert len(result.accuracy_conservative) == 3
        text = continuous.render(result)
        assert "Conservative" in text
        assert isinstance(result.conservative_gap, float)
        assert isinstance(result.default_gap, float)


class TestRowhammer:
    def test_runs_and_renders(self):
        from repro.experiments import rowhammer

        result = rowhammer.run("smoke")
        assert len(result.clustered_loss) == len(result.error_rates)
        text = rowhammer.render(result)
        assert "Row-Hammer" in text
        # Locality concentrates damage: clustered >= uniform on average
        # (holds even at smoke scale because the budget hits one class).
        assert sum(result.clustered_loss) >= sum(result.uniform_loss) - 0.02


class TestInformed:
    def test_runs_and_renders(self):
        from repro.experiments import informed

        result = informed.run("smoke")
        assert len(result.informed_loss) == len(result.error_rates)
        text = informed.render(result)
        assert "white-box" in text
        # Even at smoke scale the informed attack beats random at the
        # top of the sweep.
        assert result.informed_loss[-1] > result.random_loss[-1]


class TestECCComparison:
    def test_residual_rate_zero_noise(self):
        code = SECDED(16)
        assert ecc_comparison.residual_error_rate(
            code, 0.0, np.random.default_rng(0), num_words=20
        ) == 0.0

    def test_residual_below_raw_at_low_rates(self):
        code = SECDED(64)
        raw = 0.003
        residual = ecc_comparison.residual_error_rate(
            code, raw, np.random.default_rng(1), num_words=300
        )
        assert residual < raw

    def test_residual_saturates_at_high_rates(self):
        """Past a flip or two per codeword the decoder stops helping."""
        code = SECDED(64)
        residual = ecc_comparison.residual_error_rate(
            code, 0.10, np.random.default_rng(2), num_words=200
        )
        assert residual > 0.05

    def test_residual_validation(self):
        code = SECDED(16)
        with pytest.raises(ValueError):
            ecc_comparison.residual_error_rate(
                code, 1.5, np.random.default_rng(0)
            )
        with pytest.raises(ValueError):
            ecc_comparison.residual_error_rate(
                code, 0.1, np.random.default_rng(0), num_words=0
            )

    def test_runs_and_renders(self):
        result = ecc_comparison.run("smoke")
        assert len(result.dnn_raw_loss) == len(result.error_rates)
        assert result.ecc_storage_overhead == pytest.approx(0.125)
        text = ecc_comparison.render(result)
        assert "SECDED" in text
