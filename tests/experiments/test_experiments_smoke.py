"""Smoke tests: every experiment module runs end to end at smoke scale.

These exercise the full code path of each table/figure regeneration —
training, attacking, recovering, cost modelling, rendering — with tiny
models so the suite stays fast.  Numeric assertions here are structural
(shapes, monotonicities that hold even at small scale), not the paper
comparisons; those live in the benchmark suite at default scale.
"""

import pytest

from repro.experiments import (
    figure2,
    figure3,
    figure4a,
    figure4b,
    table1,
    table3,
    table4,
)
from repro.experiments.config import SCALES, get_scale


class TestConfig:
    def test_presets(self):
        assert set(SCALES) == {"smoke", "default", "full"}
        assert get_scale("smoke").dim < get_scale("default").dim

    def test_passthrough(self):
        scale = SCALES["smoke"]
        assert get_scale(scale) is scale

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_scale("galactic")


class TestTable1:
    def test_runs_and_renders(self):
        result = table1.run("smoke")
        assert len(result.rows) == 5
        assert len(result.rows[0].losses) == len(result.error_rates)
        text = table1.render(result)
        assert "Table 1" in text
        assert "DNN" in text


class TestTable3:
    def test_runs_and_renders(self):
        result = table3.run("smoke", datasets=("pamap",))
        assert len(result.rows) == 8  # 4 learners x 2 modes
        text = table3.render(result)
        assert "HDC" in text and "targeted" in text


class TestTable4:
    def test_runs_and_renders(self):
        result = table4.run("smoke", datasets=("pamap", "pecan"))
        assert len(result.cells) == 6
        cell = result.cell("pecan", 0.06)
        assert cell.dataset == "pecan"
        text = table4.render(result)
        assert "Without Recovery" in text and "With Recovery" in text

    def test_missing_cell(self):
        result = table4.run("smoke", datasets=("pamap",))
        with pytest.raises(KeyError):
            result.cell("mnist", 0.06)


class TestFigure2:
    def test_runs_and_renders(self):
        result = figure2.run()
        assert {e.label for e in result.entries} == {
            "DNN-GPU", "HDC-GPU", "DNN-PIM", "HDC-PIM",
        }
        base = result.entry("DNN-GPU")
        assert base.relative_speedup == pytest.approx(1.0)
        assert "Figure 2" in figure2.render(result)

    def test_paper_shape(self):
        """HDC-PIM dominates DNN-PIM which dominates DNN-GPU."""
        result = figure2.run()
        assert (
            result.entry("HDC-PIM").relative_speedup
            > result.entry("DNN-PIM").relative_speedup
            > 1.0
        )


class TestFigure3:
    def test_runs_and_renders(self):
        result = figure3.run(
            "smoke", confidence_sweep=(0.7, 0.9), substitution_sweep=(0.1,)
        )
        assert len(result.points) == 3
        t_c = result.series("T_C")
        assert len(t_c) == 2
        # Higher threshold cannot trust more samples.
        assert t_c[0].trusted_samples >= t_c[1].trusted_samples
        assert "Figure 3" in figure3.render(result)


class TestFigure4a:
    def test_runs_and_renders(self):
        result = figure4a.run("smoke")
        assert len(result.series) == 4  # 2 HDC dims + 2 DNN precisions
        for series in result.series:
            assert len(series.quality_loss) == len(series.times_years)
            assert series.lifetime_years > 0
        assert "Figure 4a" in figure4a.render(result)

    def test_loss_monotone_over_time(self):
        result = figure4a.run("smoke")
        for series in result.series:
            losses = list(series.quality_loss)
            assert losses == sorted(losses)


class TestFigure4b:
    def test_runs_and_renders(self):
        result = figure4b.run("smoke")
        assert len(result.points) == 5
        baseline = result.at_rate(0.0)
        assert baseline.efficiency_improvement == 0.0
        assert baseline.refresh_interval_ms == pytest.approx(64.0)
        # Relaxation monotone: more errors, more energy gain.
        gains = [p.efficiency_improvement for p in result.points]
        assert gains == sorted(gains)
        assert "Figure 4b" in figure4b.render(result)
