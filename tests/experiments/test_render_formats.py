"""Rendering-format tests: every experiment's text output is well formed.

The rendered tables are the artifacts EXPERIMENTS.md cites; these tests
pin their structure (title, header, separator, row counts) without
re-running the heavy computations — results are constructed directly.
"""

from repro.core.recovery import RecoveryConfig
from repro.experiments.config import SCALES
from repro.experiments.figure2 import DEFAULT_WORKLOAD, Figure2Entry, Figure2Result
from repro.experiments.figure2 import render as render_fig2
from repro.experiments.figure3 import Figure3Point, Figure3Result
from repro.experiments.figure3 import render as render_fig3
from repro.experiments.figure4b import Figure4bPoint, Figure4bResult
from repro.experiments.figure4b import render as render_fig4b
from repro.experiments.table1 import Table1Result, Table1Row
from repro.experiments.table1 import render as render_t1
from repro.experiments.table4 import Table4Cell, Table4Result
from repro.experiments.table4 import render as render_t4


class TestTableRenders:
    def test_table1_layout(self):
        result = Table1Result(
            rows=(
                Table1Row("DNN (8-bit)", (0.01, 0.02)),
                Table1Row("D=10k 1-bit", (0.001, 0.002)),
            ),
            error_rates=(0.01, 0.05),
            dataset="ucihar",
            scale="smoke",
        )
        text = render_t1(result)
        lines = text.splitlines()
        assert lines[0].startswith("Table 1")
        assert "1%" in lines[1] and "5%" in lines[1]
        assert len(lines) == 2 + 2 + 1  # title + header + rule + 2 rows

    def test_table4_layout(self):
        cells = tuple(
            Table4Cell(d, r, 0.01, 0.005)
            for d in ("a", "b")
            for r in (0.02, 0.10)
        )
        result = Table4Result(
            cells=cells, error_rates=(0.02, 0.10), datasets=("a", "b"),
            scale="smoke",
        )
        text = render_t4(result)
        assert "Without Recovery 2%" in text
        assert "With Recovery 10%" in text
        assert text.count("1.00%") == 4  # the loss_without entries

    def test_figure2_layout(self):
        entries = tuple(
            Figure2Entry(label, 1e6, 1e-6, 2.0, 3.0)
            for label in ("DNN-GPU", "HDC-PIM")
        )
        result = Figure2Result(entries=entries, workload=DEFAULT_WORKLOAD)
        text = render_fig2(result)
        assert "2.0x" in text and "3.0x" in text

    def test_figure3_layout(self):
        points = (
            Figure3Point("T_C", 0.8, 0.01, 120, (0.9, 0.91)),
            Figure3Point("S", 0.1, 0.02, 120, (0.9, 0.89)),
        )
        result = Figure3Result(
            points=points, error_rate=0.1, dataset="ucihar", scale="smoke",
            base_config=RecoveryConfig(),
        )
        text = render_fig3(result)
        assert "T_C" in text and "Fluctuation" in text
        assert result.series("T_C")[0].fluctuation >= 0

    def test_figure4b_layout(self):
        points = (
            Figure4bPoint(0.0, 64.0, 0.0, 0.0, 0.0),
            Figure4bPoint(0.04, 126.0, 0.14, 0.07, 0.004),
        )
        result = Figure4bResult(points=points, dataset="ucihar",
                                scale="smoke")
        text = render_fig4b(result)
        assert "126 ms" in text
        assert "14.0%" in text

    def test_scales_all_render_in_titles(self):
        for name in SCALES:
            result = Table1Result(
                rows=(Table1Row("x", (0.0,)),), error_rates=(0.01,),
                dataset="d", scale=name,
            )
            assert f"scale={name}" in render_t1(result)
