"""Tests for metrics, tables and sweep helpers."""

import numpy as np
import pytest

from repro.analysis.quality import accuracy, percent, quality_loss
from repro.analysis.sweep import grid_sweep
from repro.analysis.tables import render_series, render_table


class TestQuality:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            accuracy(np.zeros(3), np.zeros(4))

    def test_accuracy_empty(self):
        with pytest.raises(ValueError, match="zero"):
            accuracy(np.zeros(0), np.zeros(0))

    def test_quality_loss(self):
        assert quality_loss(0.95, 0.90) == pytest.approx(0.05)

    def test_quality_loss_can_be_negative(self):
        assert quality_loss(0.90, 0.95) == pytest.approx(-0.05)

    def test_quality_loss_validates_range(self):
        with pytest.raises(ValueError):
            quality_loss(1.5, 0.5)

    def test_percent(self):
        assert percent(0.0153) == "1.53%"
        assert percent(0.5, 0) == "50%"


class TestTables:
    def test_render_table(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "---" in lines[2]
        assert len(lines) == 5

    def test_column_count_checked(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [["1"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            render_table([], [])

    def test_render_series(self):
        text = render_series("x", "y", [(1, 2), (3, 4)])
        assert "x" in text and "4" in text


class TestSweep:
    def test_cartesian_product(self):
        points = grid_sweep(
            {"a": [1, 2], "b": [10, 20]}, lambda a, b: a * b
        )
        assert len(points) == 4
        values = {(p.params["a"], p.params["b"]): p.value for p in points}
        assert values[(2, 20)] == 40

    def test_deterministic_order(self):
        points = grid_sweep({"b": [1, 2], "a": [3]}, lambda a, b: (a, b))
        assert [p.params["b"] for p in points] == [1, 2]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_sweep({}, lambda: None)
        with pytest.raises(ValueError):
            grid_sweep({"a": []}, lambda a: None)
