"""Tests for the closed-form robustness theory."""

import numpy as np
import pytest

from repro.analysis.theory import (
    flip_probability,
    margin_distribution,
    predicted_quality_loss,
)
from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier, HDCModel
from repro.datasets.synthetic import make_prototype_classification
from repro.faults.injector import run_hdc_campaign


@pytest.fixture(scope="module")
def fitted():
    task = make_prototype_classification(
        "toy", num_features=50, num_classes=4, num_train=400, num_test=300,
        boundary_fraction=0.5, boundary_depth=(0.3, 0.5), seed=15,
    )
    encoder = Encoder(num_features=50, dim=4_000, seed=4)
    clf = HDCClassifier(encoder, num_classes=4, epochs=0).fit(
        task.train_x, task.train_y
    )
    queries = encoder.encode_batch(task.test_x)
    return clf.model, queries, np.asarray(task.test_y)


class TestMarginDistribution:
    def test_correctness_mask_matches_predictions(self, fitted):
        model, queries, labels = fitted
        margins, correct = margin_distribution(model, queries, labels)
        preds = model.predict(queries)
        assert (correct == (preds == labels)).all()

    def test_margins_bounded(self, fitted):
        model, queries, labels = fitted
        margins, _ = margin_distribution(model, queries, labels)
        assert (np.abs(margins) <= 1.0).all()


class TestFlipProbability:
    def test_zero_rate_zero_flips(self):
        p = flip_probability(np.array([0.1, -0.05]), 0.0, 10_000)
        assert (p == 0.0).all()

    def test_monotone_in_rate(self):
        margins = np.array([0.05])
        probs = [
            float(flip_probability(margins, r, 10_000)[0])
            for r in (0.01, 0.05, 0.1, 0.2)
        ]
        assert probs == sorted(probs)

    def test_monotone_in_margin(self):
        p = flip_probability(np.array([0.002, 0.005, 0.01]), 0.1, 10_000)
        assert p[0] > p[1] > p[2]

    def test_dimensionality_protects(self):
        """Table 1's trend: larger D, lower flip probability at the same
        margin and rate."""
        margins = np.array([0.03])
        small = float(flip_probability(margins, 0.1, 1_000)[0])
        large = float(flip_probability(margins, 0.1, 10_000)[0])
        assert large < small

    def test_validation(self):
        with pytest.raises(ValueError):
            flip_probability(np.array([0.1]), 1.5, 100)
        with pytest.raises(ValueError):
            flip_probability(np.array([0.1]), 0.1, 0)


class TestPredictedLoss:
    def test_tracks_measurement(self, fitted):
        """Prediction within a factor-2 band of the measured campaign at
        moderate rates, and correlated across the sweep."""
        model, queries, labels = fitted
        rates = (0.05, 0.10, 0.20)
        campaign = run_hdc_campaign(
            model, queries, labels, rates, trials=5, seed=0
        )
        predicted = [
            predicted_quality_loss(model, queries, labels, r) for r in rates
        ]
        measured = [campaign.loss(r, "random") for r in rates]
        for p, m in zip(predicted, measured):
            assert p <= 2.5 * max(m, 0.002) + 0.01
            assert m <= 3.0 * max(p, 0.002) + 0.01
        # Both rise with the rate.
        assert predicted == sorted(predicted)

    def test_multibit_rejected(self, fitted):
        model, queries, labels = fitted
        bad = HDCModel(class_hv=model.class_hv.copy(), bits=2)
        with pytest.raises(ValueError, match="1-bit"):
            predicted_quality_loss(bad, queries, labels, 0.1)
