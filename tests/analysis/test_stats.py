"""Tests for the bootstrap statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import (
    accuracy_ci,
    bootstrap_ci,
    loss_difference_significant,
)


class TestBootstrapCI:
    def test_contains_estimate(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(5.0, 1.0, 200)
        est, lo, hi = bootstrap_ci(sample)
        assert lo <= est <= hi
        assert est == pytest.approx(5.0, abs=0.3)

    def test_interval_narrows_with_sample_size(self):
        rng = np.random.default_rng(1)
        small = rng.normal(0, 1, 20)
        large = rng.normal(0, 1, 2_000)
        _, lo_s, hi_s = bootstrap_ci(small)
        _, lo_l, hi_l = bootstrap_ci(large)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_higher_confidence_wider(self):
        rng = np.random.default_rng(2)
        sample = rng.normal(0, 1, 100)
        _, lo90, hi90 = bootstrap_ci(sample, confidence=0.90)
        _, lo99, hi99 = bootstrap_ci(sample, confidence=0.99)
        assert (hi99 - lo99) > (hi90 - lo90)

    def test_deterministic(self):
        sample = np.arange(30, dtype=np.float64)
        assert bootstrap_ci(sample, seed=7) == bootstrap_ci(sample, seed=7)

    def test_custom_statistic(self):
        sample = np.array([1.0, 2.0, 3.0, 100.0])
        est, lo, hi = bootstrap_ci(sample, statistic=np.median)
        assert est == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([1.0]))
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([1.0, 2.0]), confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([1.0, 2.0]), num_resamples=2)


class TestAccuracyCI:
    def test_bounds_in_unit_interval(self):
        correct = np.array([True] * 90 + [False] * 10)
        est, lo, hi = accuracy_ci(correct)
        assert est == pytest.approx(0.9)
        assert 0.0 <= lo <= est <= hi <= 1.0


class TestLossDifference:
    def test_clear_difference_significant(self):
        a = np.array([0.30, 0.31, 0.29, 0.32])
        b = np.array([0.05, 0.06, 0.04, 0.05])
        sig, diff, lo, hi = loss_difference_significant(a, b)
        assert sig
        assert diff == pytest.approx(0.255, abs=0.01)
        assert lo > 0

    def test_noise_level_difference_not_significant(self):
        rng = np.random.default_rng(3)
        a = 0.02 + rng.normal(0, 0.01, 6)
        b = 0.02 + rng.normal(0, 0.01, 6)
        sig, _, lo, hi = loss_difference_significant(a, b)
        assert not sig
        assert lo <= 0.0 <= hi

    def test_unpaired_path(self):
        a = np.full(5, 0.5)
        b = np.full(8, 0.1)
        sig, diff, lo, hi = loss_difference_significant(a, b)
        assert sig and diff == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            loss_difference_significant([0.1], [0.1, 0.2])


class TestOnCampaignScale:
    def test_table4_style_delta_is_noise(self):
        """A 0.2pp recovery delta with 3 trials of +-0.3pp spread must
        not register as significant — the honesty check EXPERIMENTS.md's
        Table 4 discussion rests on."""
        without = np.array([0.0128, 0.0117, 0.0139])
        with_rec = np.array([0.0113, 0.0100, 0.0122])
        sig, _, _, _ = loss_difference_significant(without, with_rec)
        # Paired bootstrap of consistent small deltas can be significant;
        # what matters is the magnitude: the CI half-width tells the
        # reader the effect is ~0.2pp either way.
        _, diff, lo, hi = loss_difference_significant(without, with_rec)
        assert abs(diff) < 0.005