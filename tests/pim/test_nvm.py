"""Tests for the NVM device model and wear process."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pim.nvm import DEFAULT_DEVICE, NVMDevice, WearModel


class TestNVMDevice:
    def test_default_energies_positive(self):
        assert DEFAULT_DEVICE.set_energy_j > 0
        assert DEFAULT_DEVICE.reset_energy_j > 0
        assert DEFAULT_DEVICE.write_energy_j == pytest.approx(
            0.5 * (DEFAULT_DEVICE.set_energy_j + DEFAULT_DEVICE.reset_energy_j)
        )

    def test_set_costs_more_than_reset(self):
        """2 V SET vs 1 V RESET: quadratic in voltage."""
        assert DEFAULT_DEVICE.set_energy_j == pytest.approx(
            4 * DEFAULT_DEVICE.reset_energy_j
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(switching_delay_s=0),
            dict(r_on_ohm=1e7, r_off_ohm=1e4),
            dict(endurance_writes=0),
            dict(endurance_sigma=-1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            NVMDevice(**kwargs)


class TestWearModel:
    def test_zero_writes_zero_failures(self):
        wear = WearModel()
        assert wear.failure_fraction(0.0) == 0.0
        assert wear.bit_error_rate(0.0) == 0.0

    def test_monotone_in_writes(self):
        wear = WearModel()
        writes = np.logspace(5, 11, 30)
        frac = wear.failure_fraction(writes)
        assert (np.diff(frac) >= 0).all()

    def test_half_dead_at_nominal(self):
        """Lognormal median equals the nominal endurance."""
        wear = WearModel()
        frac = wear.failure_fraction(DEFAULT_DEVICE.endurance_writes)
        assert frac == pytest.approx(0.5, abs=0.01)

    def test_ber_is_half_failure(self):
        wear = WearModel()
        w = 3e8
        assert wear.bit_error_rate(w) == pytest.approx(
            0.5 * wear.failure_fraction(w)
        )

    def test_deterministic_sigma_zero(self):
        device = NVMDevice(endurance_sigma=0.0)
        wear = WearModel(device)
        assert wear.failure_fraction(device.endurance_writes - 1) == 0.0
        assert wear.failure_fraction(device.endurance_writes) == 1.0

    @given(st.floats(min_value=0.01, max_value=0.99))
    def test_inverse_consistency(self, fraction):
        wear = WearModel()
        writes = wear.writes_until_failure_fraction(fraction)
        assert float(wear.failure_fraction(writes)) == pytest.approx(
            fraction, abs=0.01
        )

    def test_sample_failures_matches_expectation(self):
        wear = WearModel()
        writes = 5e8
        expected = float(wear.failure_fraction(writes))
        mask = wear.sample_failures(50_000, writes, np.random.default_rng(0))
        assert abs(mask.mean() - expected) < 0.02

    def test_sample_validation(self):
        wear = WearModel()
        with pytest.raises(ValueError):
            wear.sample_failures(0, 1.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            wear.sample_failures(10, -1.0, np.random.default_rng(0))

    def test_negative_writes_rejected(self):
        with pytest.raises(ValueError):
            WearModel().failure_fraction(-1.0)
