"""Tests: functional PIM execution equals the numpy reference."""

import numpy as np
import pytest

from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier, HDCModel
from repro.datasets.synthetic import make_prototype_classification
from repro.pim.executor import HDCExecutor


@pytest.fixture(scope="module")
def small_model():
    task = make_prototype_classification(
        "toy", num_features=20, num_classes=3, num_train=120, num_test=40,
        seed=16,
    )
    encoder = Encoder(num_features=20, dim=512, seed=6)
    clf = HDCClassifier(encoder, num_classes=3, epochs=0).fit(
        task.train_x, task.train_y
    )
    queries = encoder.encode_batch(task.test_x)
    return clf.model, queries


class TestFunctionalEquivalence:
    def test_matches_reference_predictions(self, small_model):
        """In-memory NOR execution and the numpy model agree on every
        query — the gate mappings are real logic, not constants."""
        model, queries = small_model
        executor = HDCExecutor(model, tile_rows=512)
        got = executor.classify_batch(queries[:25])
        ref = model.predict(queries[:25])
        assert (got == ref).all()

    def test_folded_layout_agrees(self, small_model):
        """A tile shorter than D folds the model over row groups and must
        still agree."""
        model, queries = small_model
        folded = HDCExecutor(model, tile_rows=128)
        assert folded.folds == 4
        got = folded.classify_batch(queries[:10])
        ref = model.predict(queries[:10])
        assert (got == ref).all()

    def test_non_divisible_fold(self, small_model):
        model, queries = small_model
        executor = HDCExecutor(model, tile_rows=100)  # 512 = 5*100 + 12
        assert executor.folds == 6
        got = executor.classify_batch(queries[:6])
        assert (got == model.predict(queries[:6])).all()


class TestCostMetering:
    def test_costs_accumulate_per_query(self, small_model):
        model, queries = small_model
        executor = HDCExecutor(model, tile_rows=512)
        executor.classify(queries[0])
        one = executor.cost.gate_evals
        executor.classify(queries[1])
        two = executor.cost.gate_evals
        assert one > 0
        assert two == pytest.approx(2 * one, rel=0.01)

    def test_gate_volume_matches_xor_mapping(self, small_model):
        """Each classify runs exactly k folds of the 5-NOR XOR over
        tile_rows lanes."""
        model, queries = small_model
        executor = HDCExecutor(model, tile_rows=512)
        executor.classify(queries[0])
        expected = model.num_classes * 1 * 5 * 512  # k tiles x folds x NORs x rows
        assert executor.cost.gate_evals == expected

    def test_wear_signal(self, small_model):
        model, queries = small_model
        executor = HDCExecutor(model, tile_rows=512)
        for q in queries[:5]:
            executor.classify(q)
        assert executor.max_writes_per_cell() > 0


class TestValidation:
    def test_multibit_rejected(self):
        model = HDCModel(class_hv=np.zeros((2, 64), dtype=np.uint8), bits=2)
        with pytest.raises(ValueError, match="1-bit"):
            HDCExecutor(model)

    def test_query_shape(self, small_model):
        model, _ = small_model
        executor = HDCExecutor(model, tile_rows=512)
        with pytest.raises(ValueError, match="length"):
            executor.classify(np.zeros(100, dtype=np.uint8))
