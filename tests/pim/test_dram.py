"""Tests for the DRAM refresh-relaxation model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pim.dram import DEFAULT_DRAM, DRAMConfig, DRAMModel


@pytest.fixture(scope="module")
def dram():
    return DRAMModel()


class TestErrorRate:
    def test_zero_within_guarantee(self, dram):
        assert dram.error_rate(64.0) == 0.0
        assert dram.error_rate(10.0) == 0.0

    def test_monotone(self, dram):
        intervals = np.linspace(64, 5_000, 50)
        rates = dram.error_rate(intervals)
        assert (np.diff(rates) >= 0).all()

    @given(st.floats(min_value=0.005, max_value=0.5))
    def test_inverse_consistency(self, target):
        dram = DRAMModel()
        interval = dram.interval_for_error_rate(target)
        assert float(np.asarray(dram.error_rate(interval))) == pytest.approx(
            target, rel=1e-6
        )

    def test_bad_interval(self, dram):
        with pytest.raises(ValueError):
            dram.error_rate(0.0)

    def test_bad_target(self, dram):
        with pytest.raises(ValueError):
            dram.interval_for_error_rate(0.0)


class TestEnergy:
    def test_baseline_energy_is_one(self, dram):
        assert dram.relative_energy(64.0) == pytest.approx(1.0)
        assert dram.efficiency_improvement(64.0) == pytest.approx(0.0)

    def test_energy_decreases_with_interval(self, dram):
        assert dram.relative_energy(500.0) < dram.relative_energy(100.0)

    def test_asymptote(self, dram):
        """Infinite relaxation cannot beat the non-refresh floor."""
        gain = dram.efficiency_improvement(1e12)
        f = DEFAULT_DRAM.refresh_energy_fraction
        assert gain == pytest.approx(1.0 / (1.0 - f) - 1.0, rel=1e-3)

    def test_below_base_interval_rejected(self, dram):
        with pytest.raises(ValueError):
            dram.relative_energy(10.0)


class TestPaperCalibration:
    """The two operating points quoted in Section 6.6."""

    def test_four_percent_errors_buy_14_percent(self, dram):
        assert dram.efficiency_at_error_rate(0.04) == pytest.approx(
            0.14, abs=0.01
        )

    def test_six_percent_errors_buy_22_percent(self, dram):
        assert dram.efficiency_at_error_rate(0.06) == pytest.approx(
            0.22, abs=0.01
        )


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(base_interval_ms=0),
            dict(refresh_energy_fraction=0.0),
            dict(refresh_energy_fraction=1.0),
            dict(weibull_shape=0),
            dict(weibull_scale_ms=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DRAMConfig(**kwargs)
