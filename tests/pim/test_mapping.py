"""Tests for the workload-to-crossbar mapping layer."""

import pytest

from repro.pim.dpim import DPIM, DPIMConfig
from repro.pim.mapping import (
    Placement,
    map_dnn_model,
    map_hdc_model,
    wear_tracker_for,
    writes_per_cell_per_inference,
)


class TestPlacement:
    def test_hdc_footprint(self):
        p = map_hdc_model(561, 10_000, 12)
        assert p.operand_bits == (561 + 12) * 10_000
        assert p.scratch_bits == p.operand_bits * 8
        assert 0.0 < p.utilization <= 1.0
        assert 0.0 < p.chip_fraction < 1.0

    def test_dnn_footprint(self):
        p = map_dnn_model([561, 128, 12], weight_bits=8)
        assert p.operand_bits == (561 * 128 + 128 * 12) * 8

    def test_tiles_cover_bits(self):
        cfg = DPIMConfig()
        p = map_hdc_model(100, 2_000, 4, config=cfg)
        assert p.tiles_used * cfg.array_rows * cfg.array_cols >= p.total_bits

    def test_too_big_rejected(self):
        tiny = DPIMConfig(array_rows=64, array_cols=64, num_arrays=2)
        with pytest.raises(ValueError, match="tiles"):
            map_hdc_model(561, 10_000, 12, config=tiny)

    def test_validation(self):
        cfg = DPIMConfig()
        with pytest.raises(ValueError):
            Placement("x", operand_bits=0, scratch_bits=0, tiles_used=1,
                      lanes_used=1, config=cfg)
        with pytest.raises(ValueError):
            map_hdc_model(0, 100, 2)
        with pytest.raises(ValueError):
            map_dnn_model([64])


class TestWearIntegration:
    def test_tracker_sized_to_rotation(self):
        p = map_hdc_model(100, 2_000, 4)
        tracker = wear_tracker_for(p, rotation_span=16)
        assert tracker.num_cells == min(
            p.total_bits * 16,
            p.config.num_arrays * p.config.array_rows * p.config.array_cols,
        )

    def test_rotation_reduces_per_cell_writes(self):
        p = map_hdc_model(561, 10_000, 12)
        kernel = DPIM().hdc_inference(561, 10_000, 12)
        tight = writes_per_cell_per_inference(p, kernel, rotation_span=1)
        wide = writes_per_cell_per_inference(p, kernel, rotation_span=32)
        assert wide < tight

    def test_rotation_capped_by_chip(self):
        p = map_hdc_model(561, 10_000, 12)
        kernel = DPIM().hdc_inference(561, 10_000, 12)
        huge = writes_per_cell_per_inference(p, kernel, rotation_span=10**6)
        chip_cells = (
            p.config.num_arrays * p.config.array_rows * p.config.array_cols
        )
        assert huge == pytest.approx(kernel.writes / chip_cells)

    def test_bad_rotation(self):
        p = map_hdc_model(10, 500, 2)
        with pytest.raises(ValueError, match="rotation_span"):
            wear_tracker_for(p, rotation_span=0)
