"""Tests for the SECDED error-correcting code."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pim.ecc import ECCStats, SECDED


@pytest.fixture(scope="module")
def code():
    return SECDED(64)


class TestCodeParameters:
    def test_classic_72_64(self, code):
        assert code.parity_bits == 7
        assert code.code_bits == 72
        assert code.overhead == pytest.approx(0.125)

    def test_small_codes(self):
        assert SECDED(4).code_bits == 8  # Hamming(7,4) + overall parity
        assert SECDED(8).code_bits == 13

    def test_overheads_monotone_down(self):
        assert SECDED(8).overhead > SECDED(64).overhead

    def test_multipliers(self, code):
        assert code.access_energy_multiplier > 1.0
        assert code.access_latency_multiplier > 1.0

    def test_bad_width(self):
        with pytest.raises(ValueError):
            SECDED(0)


class TestEncodeDecode:
    def test_clean_roundtrip(self, code):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2, 64, dtype=np.uint8)
        result = code.decode(code.encode(data))
        assert (result.data == data).all()
        assert not result.corrected and not result.uncorrectable

    def test_every_single_bit_error_corrected(self):
        """Exhaustive: any one flipped codeword bit is corrected."""
        code = SECDED(16)
        rng = np.random.default_rng(1)
        data = rng.integers(0, 2, 16, dtype=np.uint8)
        clean = code.encode(data)
        for pos in range(code.code_bits):
            corrupted = clean.copy()
            corrupted[pos] ^= 1
            result = code.decode(corrupted)
            assert (result.data == data).all(), f"failed at position {pos}"
            assert result.corrected
            assert not result.uncorrectable

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30)
    def test_double_errors_detected(self, seed):
        code = SECDED(16)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, 16, dtype=np.uint8)
        clean = code.encode(data)
        i, j = rng.choice(code.code_bits, size=2, replace=False)
        corrupted = clean.copy()
        corrupted[i] ^= 1
        corrupted[j] ^= 1
        result = code.decode(corrupted)
        assert result.uncorrectable

    def test_encode_validation(self, code):
        with pytest.raises(ValueError, match="binary"):
            code.encode(np.full(64, 2, dtype=np.uint8))
        with pytest.raises(ValueError, match="expected 64"):
            code.encode(np.zeros(32, dtype=np.uint8))

    def test_decode_shape(self, code):
        with pytest.raises(ValueError, match="code bits"):
            code.decode(np.zeros(10, dtype=np.uint8))


class TestScrub:
    def test_zero_error_rate_perfect(self, code):
        rng = np.random.default_rng(2)
        words = rng.integers(0, 2, (20, 64), dtype=np.uint8)
        out = code.scrub(words, 0.0, rng)
        assert (out == words).all()

    def test_low_error_rate_mostly_recovered(self, code):
        rng = np.random.default_rng(3)
        words = rng.integers(0, 2, (100, 64), dtype=np.uint8)
        stats = ECCStats()
        out = code.scrub(words, 0.005, rng, stats)
        bit_errors = np.count_nonzero(out != words)
        assert bit_errors / words.size < 0.005  # better than raw
        assert stats.words == 100
        assert stats.corrected > 0

    def test_high_error_rate_overwhelms(self, code):
        """Past ~a couple flips per word the code collapses — the regime
        where the paper says ECC cost dominates and HDC wins."""
        rng = np.random.default_rng(4)
        words = rng.integers(0, 2, (60, 64), dtype=np.uint8)
        stats = ECCStats()
        code.scrub(words, 0.05, rng, stats)
        assert stats.detected_uncorrectable + stats.undetected > 0

    def test_bad_rate(self, code):
        with pytest.raises(ValueError):
            code.scrub(np.zeros((1, 64), dtype=np.uint8), 1.5,
                       np.random.default_rng(0))
