"""Tests for the analytic DPIM cost model."""

import pytest

from repro.pim.dpim import DPIM, DPIMConfig, NOR_PER_FULL_ADDER, NOR_PER_XOR


@pytest.fixture(scope="module")
def dpim():
    return DPIM()


class TestPrimitives:
    def test_xor_volume(self, dpim):
        cost = dpim.xor_vectors(1_000, num_pairs=3)
        assert cost.gate_evals == NOR_PER_XOR * 3_000
        assert cost.writes == int(cost.gate_evals * dpim.config.switch_activity)
        assert cost.energy_j > 0

    def test_lane_batching_raises_depth_not_volume(self):
        small = DPIM(DPIMConfig(num_arrays=1, array_rows=64))
        big = DPIM(DPIMConfig(num_arrays=64, array_rows=1024))
        c_small = small.xor_vectors(10_000)
        c_big = big.xor_vectors(10_000)
        assert c_small.cycles > c_big.cycles
        assert c_small.gate_evals == c_big.gate_evals

    def test_popcount_scales_superlinearly(self, dpim):
        small = dpim.popcount(256).gate_evals
        large = dpim.popcount(4_096).gate_evals
        assert large > 16 * small * 0.8  # ~linear x adder-width growth

    def test_fixed_add_linear_in_width(self, dpim):
        assert dpim.fixed_add(16).gate_evals == 2 * dpim.fixed_add(8).gate_evals

    def test_multiply_quadratic_in_width(self, dpim):
        """Section 5.3: PIM multiply cycles grow quadratically with
        bit-width."""
        c8 = dpim.fixed_multiply(8)
        c16 = dpim.fixed_multiply(16)
        c32 = dpim.fixed_multiply(32)
        assert 3.0 < c16.gate_evals / c8.gate_evals < 5.0
        assert 3.0 < c32.gate_evals / c16.gate_evals < 5.0

    @pytest.mark.parametrize("method,args", [
        ("xor_vectors", (0,)),
        ("popcount", (0,)),
        ("fixed_add", (0,)),
        ("fixed_multiply", (0,)),
    ])
    def test_bad_sizes(self, dpim, method, args):
        with pytest.raises(ValueError):
            getattr(dpim, method)(*args)


class TestKernels:
    def test_hdc_inference_components(self, dpim):
        encode = dpim.hdc_encode(561, 10_000)
        classify = dpim.hdc_classify(10_000, 12)
        full = dpim.hdc_inference(561, 10_000, 12)
        assert full.gate_evals == encode.gate_evals + classify.gate_evals

    def test_dnn_layers_required(self, dpim):
        with pytest.raises(ValueError, match="at least"):
            dpim.dnn_inference([64])

    def test_hdc_cheaper_than_paper_band_dnn(self, dpim):
        """The Figure 2 headline: HDC needs fewer gate evaluations than
        the LookNN-band DNN for the same task shape."""
        hdc = dpim.hdc_inference(561, 10_000, 12)
        dnn = dpim.dnn_inference([561, 512, 512, 12], width=8)
        assert dnn.gate_evals > hdc.gate_evals
        assert dnn.energy_j > hdc.energy_j

    def test_float32_dnn_much_heavier(self, dpim):
        w8 = dpim.dnn_inference([64, 32, 8], width=8)
        w32 = dpim.dnn_inference([64, 32, 8], width=32)
        assert w32.gate_evals > 8 * w8.gate_evals

    def test_throughput(self, dpim):
        cost = dpim.hdc_inference(100, 2_000, 4)
        thr = dpim.throughput_per_s(cost)
        assert thr == pytest.approx(dpim.nor_bandwidth_per_s / cost.gate_evals)

    def test_throughput_needs_gates(self, dpim):
        from repro.pim.crossbar import OpCost

        with pytest.raises(ValueError):
            dpim.throughput_per_s(OpCost())

    def test_writes_per_cell(self, dpim):
        cost = dpim.hdc_inference(100, 2_000, 4)
        dense = dpim.writes_per_cell(cost, active_cells=10_000)
        spread = dpim.writes_per_cell(cost)
        assert dense > spread

    def test_writes_per_cell_validation(self, dpim):
        cost = dpim.fixed_add(8)
        with pytest.raises(ValueError):
            dpim.writes_per_cell(cost, active_cells=0)


class TestConfig:
    def test_parallel_lanes(self):
        cfg = DPIMConfig(array_rows=256, num_arrays=4)
        assert cfg.parallel_lanes == 1_024

    @pytest.mark.parametrize(
        "kwargs",
        [dict(array_rows=0), dict(switch_activity=0.0), dict(num_arrays=0)],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DPIMConfig(**kwargs)
