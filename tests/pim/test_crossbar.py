"""Functional tests of the NOR crossbar against numpy truth."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pim.crossbar import Crossbar, OpCost


def loaded_crossbar(bits_a, bits_b):
    xb = Crossbar(len(bits_a), 10)
    xb.write_column(0, np.asarray(bits_a, dtype=np.uint8))
    xb.write_column(1, np.asarray(bits_b, dtype=np.uint8))
    return xb


bit_rows = st.lists(
    st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=1, max_size=32
)


class TestGates:
    @given(bit_rows)
    @settings(max_examples=25)
    def test_nor_truth(self, rows):
        a = np.array([r[0] for r in rows], dtype=np.uint8)
        b = np.array([r[1] for r in rows], dtype=np.uint8)
        xb = loaded_crossbar(a, b)
        xb.nor([0, 1], 2)
        expected = ((a | b) ^ 1).astype(np.uint8)
        assert (xb.data[:, 2] == expected).all()

    @given(bit_rows)
    @settings(max_examples=25)
    def test_xor_truth(self, rows):
        a = np.array([r[0] for r in rows], dtype=np.uint8)
        b = np.array([r[1] for r in rows], dtype=np.uint8)
        xb = loaded_crossbar(a, b)
        xb.xor(0, 1, 2, (3, 4, 5))
        assert (xb.data[:, 2] == (a ^ b)).all()

    @given(bit_rows)
    @settings(max_examples=25)
    def test_and_truth(self, rows):
        a = np.array([r[0] for r in rows], dtype=np.uint8)
        b = np.array([r[1] for r in rows], dtype=np.uint8)
        xb = loaded_crossbar(a, b)
        xb.and_(0, 1, 2, (3, 4))
        assert (xb.data[:, 2] == (a & b)).all()

    @given(bit_rows)
    @settings(max_examples=25)
    def test_or_truth(self, rows):
        a = np.array([r[0] for r in rows], dtype=np.uint8)
        b = np.array([r[1] for r in rows], dtype=np.uint8)
        xb = loaded_crossbar(a, b)
        xb.or_(0, 1, 2, 3)
        assert (xb.data[:, 2] == (a | b)).all()

    def test_not_truth(self):
        a = np.array([0, 1, 1, 0], dtype=np.uint8)
        xb = loaded_crossbar(a, a)
        xb.not_(0, 3)
        assert (xb.data[:, 3] == (1 - a)).all()

    def test_multi_input_nor(self):
        xb = Crossbar(4, 8)
        for col, bits in enumerate(
            ([0, 0, 1, 1], [0, 1, 0, 1], [0, 0, 0, 1])
        ):
            xb.write_column(col, np.array(bits, dtype=np.uint8))
        xb.nor([0, 1, 2], 5)
        assert list(xb.data[:, 5]) == [1, 0, 0, 0]


class TestMetering:
    def test_costs_accumulate(self):
        xb = Crossbar(8, 8)
        assert xb.cost.cycles == 0
        xb.write_column(0, np.ones(8, dtype=np.uint8))
        xb.nor([0], 1)
        assert xb.cost.cycles >= 3
        assert xb.cost.writes > 0
        assert xb.cost.energy_j > 0
        assert xb.cost.gate_evals == 8  # one NOR over 8 rows

    def test_write_counts_track_switching(self):
        xb = Crossbar(4, 4)
        xb.write_column(0, np.ones(4, dtype=np.uint8))
        assert xb.write_counts[:, 0].sum() == 4
        # Rewriting the same data switches nothing.
        xb.write_column(0, np.ones(4, dtype=np.uint8))
        assert xb.write_counts[:, 0].sum() == 4

    def test_read_column(self):
        xb = Crossbar(4, 4)
        bits = np.array([1, 0, 1, 0], dtype=np.uint8)
        xb.write_column(2, bits)
        out = xb.read_column(2)
        assert (out == bits).all()
        assert xb.cost.reads == 4

    def test_opcost_arithmetic(self):
        a = OpCost(cycles=2, writes=3, reads=1, gate_evals=4, energy_j=1e-12)
        b = a + a
        assert b.cycles == 4 and b.gate_evals == 8
        c = a.scaled(3)
        assert c.writes == 9
        assert c.energy_j == pytest.approx(3e-12)
        a += b
        assert a.cycles == 6

    def test_opcost_scaled_validation(self):
        with pytest.raises(ValueError):
            OpCost().scaled(-1)

    def test_latency(self):
        cost = OpCost(cycles=10)
        assert cost.latency_s() == pytest.approx(10e-9)


class TestValidation:
    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            Crossbar(0, 4)

    def test_output_cannot_be_input(self):
        xb = Crossbar(2, 4)
        with pytest.raises(ValueError, match="output column"):
            xb.nor([0, 1], 1)

    def test_column_bounds(self):
        xb = Crossbar(2, 4)
        with pytest.raises(IndexError):
            xb.nor([0], 4)

    def test_xor_needs_distinct_columns(self):
        xb = Crossbar(2, 8)
        with pytest.raises(ValueError, match="distinct"):
            xb.xor(0, 1, 2, (3, 3, 5))

    def test_write_column_shape(self):
        xb = Crossbar(4, 4)
        with pytest.raises(ValueError, match="expected 4 bits"):
            xb.write_column(0, np.zeros(3, dtype=np.uint8))
