"""Tests for wear tracking and lifetime projection."""

import numpy as np
import pytest

from repro.pim.endurance import (
    SECONDS_PER_YEAR,
    LifetimePoint,
    LifetimeProjector,
    WearTracker,
)
from repro.pim.nvm import NVMDevice


class TestWearTracker:
    def test_leveling_spreads_uniformly(self):
        tracker = WearTracker(num_cells=1_000, num_regions=10,
                              wear_leveling=True)
        tracker.add_writes(10_000, region=0)
        per_cell = tracker.writes_per_cell()
        assert np.allclose(per_cell, per_cell[0])
        assert tracker.max_writes_per_cell() == pytest.approx(10.0)

    def test_no_leveling_concentrates(self):
        tracker = WearTracker(num_cells=1_000, num_regions=10,
                              wear_leveling=False)
        tracker.add_writes(10_000, region=3)
        per_cell = tracker.writes_per_cell()
        assert per_cell[3] == pytest.approx(100.0)
        assert per_cell[0] == 0.0
        assert tracker.max_writes_per_cell() == pytest.approx(100.0)

    def test_region_none_spreads_even_without_leveling(self):
        tracker = WearTracker(num_cells=100, num_regions=4,
                              wear_leveling=False)
        tracker.add_writes(400)
        assert tracker.max_writes_per_cell() == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WearTracker(num_cells=0)
        with pytest.raises(ValueError):
            WearTracker(num_cells=4, num_regions=8)
        tracker = WearTracker(num_cells=100, num_regions=4)
        with pytest.raises(ValueError):
            tracker.add_writes(-1)
        tracker.wear_leveling = False
        with pytest.raises(IndexError):
            tracker.add_writes(1, region=9)


class TestLifetimeProjector:
    @staticmethod
    def step_loss(ber: float) -> float:
        return 0.1 if ber > 0.01 else 0.0

    def test_point_structure(self):
        projector = LifetimeProjector(10.0, self.step_loss)
        point = projector.at(1_000.0)
        assert isinstance(point, LifetimePoint)
        assert point.writes_per_cell == pytest.approx(10_000.0)
        assert point.bit_error_rate >= 0.0

    def test_trajectory_monotone_loss(self):
        projector = LifetimeProjector(50.0, lambda ber: min(1.0, 10 * ber))
        times = np.linspace(0, 10 * SECONDS_PER_YEAR, 20)
        losses = [p.quality_loss for p in projector.trajectory(times)]
        assert losses == sorted(losses)

    def test_lifetime_bisection(self):
        projector = LifetimeProjector(100.0, lambda ber: min(1.0, 10 * ber))
        lifetime = projector.lifetime_s(0.05)
        # Loss just below the budget before, just above after.
        assert projector.at(lifetime * 0.95).quality_loss <= 0.05
        assert projector.at(lifetime * 1.05).quality_loss >= 0.05

    def test_horizon_returned_when_never_exceeded(self):
        projector = LifetimeProjector(1e-9, self.step_loss)
        horizon = 5 * SECONDS_PER_YEAR
        assert projector.lifetime_s(0.5, horizon_s=horizon) == horizon

    def test_faster_wear_shorter_life(self):
        slow = LifetimeProjector(1.0, lambda b: min(1.0, 10 * b))
        fast = LifetimeProjector(100.0, lambda b: min(1.0, 10 * b))
        assert fast.lifetime_s(0.05) < slow.lifetime_s(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            LifetimeProjector(0.0, self.step_loss)
        projector = LifetimeProjector(1.0, self.step_loss)
        with pytest.raises(ValueError):
            projector.at(-1.0)
        with pytest.raises(ValueError):
            projector.lifetime_s(0.0)
