"""Tests for the GPU roofline baseline model."""

import pytest

from repro.pim.gpu import GTX_1080, GPUConfig, GPUModel


@pytest.fixture(scope="module")
def gpu():
    return GPUModel()


class TestOps:
    def test_dnn_ops(self, gpu):
        assert gpu.dnn_ops([10, 5, 2]) == 2 * (50 + 10)

    def test_dnn_ops_validation(self, gpu):
        with pytest.raises(ValueError):
            gpu.dnn_ops([10])

    def test_hdc_ops(self, gpu):
        assert gpu.hdc_ops(10, 100, 3) == 10 * 100 + 2 * 3 * 100

    def test_hdc_ops_validation(self, gpu):
        with pytest.raises(ValueError):
            gpu.hdc_ops(0, 100, 3)


class TestLatencyEnergy:
    def test_positive(self, gpu):
        lat = gpu.inference_latency_s(1e6, 1e5)
        assert lat > 0
        assert gpu.inference_energy_j(1e6, 1e5) == pytest.approx(
            lat * GTX_1080.board_power_w
        )

    def test_more_ops_slower(self, gpu):
        assert gpu.inference_latency_s(1e8, 1e4) > gpu.inference_latency_s(
            1e5, 1e4
        )

    def test_memory_bound_regime(self):
        """Huge model + tiny compute: latency is set by weight streaming."""
        cfg = GPUConfig(launch_overhead_s=0.0, batch_size=1)
        gpu = GPUModel(cfg)
        lat = gpu.inference_latency_s(1.0, 1e9)
        expected = 1e9 / (cfg.memory_bandwidth_bps * cfg.bandwidth_utilization)
        assert lat == pytest.approx(expected, rel=1e-6)

    def test_compute_bound_regime(self):
        cfg = GPUConfig(launch_overhead_s=0.0, batch_size=1)
        gpu = GPUModel(cfg)
        lat = gpu.inference_latency_s(1e12, 1.0)
        expected = 1e12 / (cfg.peak_ops_per_s * cfg.compute_utilization)
        assert lat == pytest.approx(expected, rel=1e-6)

    def test_batching_amortises_overhead(self):
        small = GPUModel(GPUConfig(batch_size=1))
        big = GPUModel(GPUConfig(batch_size=512))
        assert big.inference_latency_s(1e3, 1e3) < small.inference_latency_s(
            1e3, 1e3
        )

    def test_validation(self, gpu):
        with pytest.raises(ValueError):
            gpu.inference_latency_s(0, 10)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(peak_ops_per_s=0),
            dict(compute_utilization=0),
            dict(compute_utilization=1.5),
            dict(bandwidth_utilization=0),
            dict(batch_size=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GPUConfig(**kwargs)
