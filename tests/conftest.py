"""Shared test configuration."""

from hypothesis import HealthCheck, settings

# Property tests run numpy-heavy bodies whose first call pays JIT-ish
# warmup (BLAS thread pools); disable the wall-clock deadline so CI
# machines under load don't produce flaky DeadlineExceeded failures.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
