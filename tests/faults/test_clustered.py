"""Tests for the clustered (physically local) attack mode."""

import numpy as np
import pytest

from repro.core.model import HDCModel
from repro.faults.api import attack
from repro.faults.bitflip import (
    num_bits_to_flip,
    sample_clustered_bits,
)


class TestSampling:
    def test_exact_budget(self):
        bits = sample_clustered_bits(
            100_000, 0.05, np.random.default_rng(0), cluster_bits=512
        )
        assert bits.shape[0] == num_bits_to_flip(100_000, 0.05)
        assert len(set(bits.tolist())) == bits.shape[0]

    def test_locality(self):
        """Flips concentrate in few spans instead of spreading uniformly."""
        total, cluster = 100_000, 512
        bits = sample_clustered_bits(
            total, 0.02, np.random.default_rng(1), cluster_bits=cluster
        )
        spans_hit = len(set((bits // cluster).tolist()))
        uniform_bits = np.random.default_rng(1).choice(
            total, size=bits.shape[0], replace=False
        )
        uniform_spans = len(set((uniform_bits // cluster).tolist()))
        assert spans_hit < uniform_spans / 3

    def test_half_density_within_victims(self):
        total, cluster = 100_000, 512
        bits = sample_clustered_bits(
            total, 0.02, np.random.default_rng(2), cluster_bits=cluster
        )
        spans, counts = np.unique(bits // cluster, return_counts=True)
        # All but possibly the last span carry exactly cluster/2 flips.
        assert (counts == cluster // 2).sum() >= len(spans) - 1

    def test_zero_rate(self):
        bits = sample_clustered_bits(1_000, 0.0, np.random.default_rng(0))
        assert bits.size == 0

    def test_spillover_for_tiny_memories(self):
        """When the budget exceeds the victims' capacity the remainder
        spills uniformly rather than being silently dropped."""
        bits = sample_clustered_bits(
            600, 0.9, np.random.default_rng(3), cluster_bits=512
        )
        assert bits.shape[0] == num_bits_to_flip(600, 0.9)
        assert len(set(bits.tolist())) == bits.shape[0]

    def test_bad_cluster(self):
        with pytest.raises(ValueError, match="cluster_bits"):
            sample_clustered_bits(100, 0.1, np.random.default_rng(0),
                                  cluster_bits=1)


class TestClusteredAttack:
    def test_damage_concentrated_per_class(self):
        rng = np.random.default_rng(4)
        model = HDCModel(
            class_hv=rng.integers(0, 2, (4, 4_096), dtype=np.uint8), bits=1
        )
        attacked, _ = attack(
            model, 0.02, "clustered", np.random.default_rng(5),
            cluster_bits=512,
        )
        per_class = (attacked.class_hv != model.class_hv).sum(axis=1)
        # With ~1 victim span, the damage is not evenly split 4 ways.
        assert per_class.max() > 2 * max(per_class.min(), 1)

    def test_budget_matches_uniform(self):
        rng = np.random.default_rng(6)
        model = HDCModel(
            class_hv=rng.integers(0, 2, (4, 4_096), dtype=np.uint8), bits=1
        )
        a, _ = attack(model, 0.05, "clustered", np.random.default_rng(7))
        b, _ = attack(model, 0.05, "random", np.random.default_rng(7))
        assert (
            (a.class_hv != model.class_hv).sum()
            == (b.class_hv != model.class_hv).sum()
        )
