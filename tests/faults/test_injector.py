"""Tests for the fault-injection campaign runner."""

import numpy as np
import pytest

from repro.baselines.deploy import QuantizedDeployment
from repro.baselines.mlp import MLPClassifier
from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier
from repro.datasets.synthetic import make_prototype_classification
from repro.faults.injector import run_deployment_campaign, run_hdc_campaign


@pytest.fixture(scope="module")
def setup():
    task = make_prototype_classification(
        "toy", num_features=30, num_classes=3, num_train=250, num_test=120,
        boundary_fraction=0.3, boundary_depth=(0.3, 0.5), seed=13,
    )
    encoder = Encoder(num_features=30, dim=1_000, seed=0)
    clf = HDCClassifier(encoder, num_classes=3, epochs=0).fit(
        task.train_x, task.train_y
    )
    encoded = encoder.encode_batch(task.test_x)
    return task, clf.model, encoded


class TestHDCCampaign:
    def test_structure(self, setup):
        task, model, encoded = setup
        result = run_hdc_campaign(
            model, encoded, task.test_y, rates=(0.05, 0.2),
            modes=("random", "targeted"), trials=2,
        )
        assert len(result.cells) == 4
        cell = result.cell(0.05, "random")
        assert cell.trials == 2
        assert 0.0 <= result.clean_accuracy <= 1.0

    def test_loss_consistency(self, setup):
        task, model, encoded = setup
        result = run_hdc_campaign(
            model, encoded, task.test_y, rates=(0.1,), trials=2
        )
        cell = result.cell(0.1, "random")
        assert cell.quality_loss_mean == pytest.approx(
            result.clean_accuracy - cell.attacked_accuracy_mean
        )

    def test_deterministic_given_seed(self, setup):
        task, model, encoded = setup
        a = run_hdc_campaign(model, encoded, task.test_y, rates=(0.1,),
                             trials=2, seed=7)
        b = run_hdc_campaign(model, encoded, task.test_y, rates=(0.1,),
                             trials=2, seed=7)
        assert a.loss(0.1, "random") == b.loss(0.1, "random")

    def test_heavy_attack_hurts(self, setup):
        task, model, encoded = setup
        result = run_hdc_campaign(
            model, encoded, task.test_y, rates=(0.45,), trials=3
        )
        assert result.loss(0.45, "random") > 0.02

    def test_missing_cell_raises(self, setup):
        task, model, encoded = setup
        result = run_hdc_campaign(model, encoded, task.test_y, rates=(0.1,))
        with pytest.raises(KeyError):
            result.cell(0.2, "random")

    def test_bad_trials(self, setup):
        task, model, encoded = setup
        with pytest.raises(ValueError, match="trials"):
            run_hdc_campaign(model, encoded, task.test_y, rates=(0.1,),
                             trials=0)


class TestDeploymentCampaign:
    def test_end_to_end(self, setup):
        task, _, _ = setup
        mlp = MLPClassifier(task.num_features, task.num_classes, hidden=(16,),
                            epochs=15, seed=0).fit(task.train_x, task.train_y)
        deployment = QuantizedDeployment(mlp, width=8)
        result = run_deployment_campaign(
            deployment, task.test_x, task.test_y, rates=(0.02, 0.1),
            modes=("random",), trials=2,
        )
        assert result.clean_accuracy > 0.7
        # A 10% attack on 8-bit weights must hurt a lot more than 2%.
        assert result.loss(0.1, "random") > result.loss(0.02, "random")
