"""Tests for the bit-flip attack primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.quantization import FixedPointTensor
from repro.core.model import HDCModel
from repro.faults.api import attack
from repro.faults.bitflip import (
    attack_tensor,
    attack_tensors,
    flip_hdc_bits,
    hdc_msb_first_bit_order,
    num_bits_to_flip,
    sample_random_bits,
    sample_targeted_bits,
)


def make_model(k=3, dim=64, bits=1, seed=0):
    rng = np.random.default_rng(seed)
    hv = rng.integers(0, 1 << bits, (k, dim)).astype(np.uint8)
    return HDCModel(class_hv=hv, bits=bits)


class TestBudgets:
    @given(st.integers(min_value=1, max_value=10_000),
           st.floats(min_value=0.0, max_value=1.0))
    def test_num_bits_exact(self, total, rate):
        n = num_bits_to_flip(total, rate)
        assert 0 <= n <= total
        assert n == int(round(rate * total))

    def test_bad_rate(self):
        with pytest.raises(ValueError, match="rate"):
            num_bits_to_flip(10, 1.5)

    def test_bad_total(self):
        with pytest.raises(ValueError, match="total_bits"):
            num_bits_to_flip(0, 0.5)


class TestSampling:
    def test_random_bits_distinct(self):
        bits = sample_random_bits(1_000, 0.5, np.random.default_rng(0))
        assert len(bits) == 500
        assert len(set(bits.tolist())) == 500

    def test_targeted_takes_msb_planes_first(self):
        fp = FixedPointTensor.from_float(np.zeros(10), width=8)
        order = fp.msb_first_bit_order()
        # Budget = exactly one plane (10 bits of 80): all must be MSBs.
        bits = sample_targeted_bits(order, 10 / 80, np.random.default_rng(0))
        assert len(bits) == 10
        assert set((bits % 8).tolist()) == {7}

    def test_targeted_shuffles_within_plane(self):
        fp = FixedPointTensor.from_float(np.zeros(100), width=8)
        order = fp.msb_first_bit_order()
        a = sample_targeted_bits(order, 0.05, np.random.default_rng(1))
        b = sample_targeted_bits(order, 0.05, np.random.default_rng(2))
        assert set(a.tolist()) != set(b.tolist())

    def test_targeted_zero_budget(self):
        fp = FixedPointTensor.from_float(np.zeros(4), width=8)
        bits = sample_targeted_bits(
            fp.msb_first_bit_order(), 0.0, np.random.default_rng(0)
        )
        assert bits.size == 0


class TestAttackTensor:
    def test_exact_flip_count(self):
        fp = FixedPointTensor.from_float(np.zeros(50), width=8)
        attacked = attack_tensor(fp, 0.1, "random", np.random.default_rng(0))
        diff = attacked.raw ^ fp.raw
        flipped = sum(bin(int(x)).count("1") for x in diff)
        assert flipped == 40  # 10% of 400 bits

    def test_victim_untouched(self):
        fp = FixedPointTensor.from_float(np.ones(10), width=8)
        snapshot = fp.raw.copy()
        attack_tensor(fp, 0.5, "random", np.random.default_rng(0))
        assert (fp.raw == snapshot).all()

    def test_bad_mode(self):
        fp = FixedPointTensor.from_float(np.zeros(4))
        with pytest.raises(ValueError, match="mode"):
            attack_tensor(fp, 0.1, "sideways", np.random.default_rng(0))


class TestAttackTensors:
    def test_global_budget_split(self):
        tensors = [
            FixedPointTensor.from_float(np.zeros(100), width=8),
            FixedPointTensor.from_float(np.zeros(300), width=8),
        ]
        attacked = attack_tensors(tensors, 0.1, "random",
                                  np.random.default_rng(0))
        flips = [
            sum(bin(int(x)).count("1") for x in (a.raw ^ t.raw))
            for a, t in zip(attacked, tensors)
        ]
        assert sum(flips) == 320  # 10% of 3200 bits total
        # Larger tensor absorbs roughly proportional damage.
        assert flips[1] > flips[0]

    def test_targeted_budget_exact(self):
        tensors = [
            FixedPointTensor.from_float(np.zeros(64), width=8),
            FixedPointTensor.from_float(np.zeros(96), width=8),
        ]
        attacked = attack_tensors(tensors, 0.05, "targeted",
                                  np.random.default_rng(1))
        flips = [
            sum(bin(int(x)).count("1") for x in (a.raw ^ t.raw))
            for a, t in zip(attacked, tensors)
        ]
        assert sum(flips) == num_bits_to_flip(64 * 8 + 96 * 8, 0.05)

    def test_zero_budget(self):
        tensors = [FixedPointTensor.from_float(np.zeros(4), width=8)]
        out = attack_tensors(tensors, 0.0, "random", np.random.default_rng(0))
        assert (out[0].raw == tensors[0].raw).all()


class TestAttackHDC:
    def test_one_bit_flip_count(self):
        model = make_model(k=4, dim=250, bits=1)
        attacked, _ = attack(model, 0.1, "random",
                             np.random.default_rng(0))
        changed = int(np.count_nonzero(attacked.class_hv != model.class_hv))
        assert changed == 100  # 10% of 1000 bits

    def test_two_bit_flips_respect_levels(self):
        model = make_model(k=2, dim=100, bits=2)
        attacked, _ = attack(model, 0.2, "random",
                             np.random.default_rng(1))
        assert attacked.class_hv.max() <= 3

    def test_random_equals_targeted_for_binary(self):
        """For a 1-bit model every bit is an MSB: targeted and random
        damage have identical statistics — the paper's Table 3 point."""
        model = make_model(k=4, dim=2_000, bits=1, seed=2)
        rng = np.random.default_rng(3)
        rand, _ = attack(model, 0.1, "random", rng)
        targ, _ = attack(model, 0.1, "targeted", rng)
        n_rand = int(np.count_nonzero(rand.class_hv != model.class_hv))
        n_targ = int(np.count_nonzero(targ.class_hv != model.class_hv))
        assert n_rand == n_targ == 800

    def test_msb_order_covers_all_bits(self):
        model = make_model(k=2, dim=10, bits=2)
        order = hdc_msb_first_bit_order(model)
        assert len(set(order.tolist())) == model.total_bits
        # First plane is the high bit (bit 1) of every element.
        assert set((order[:20] % 2).tolist()) == {1}

    def test_flip_hdc_bits_in_place_and_reversible(self):
        model = make_model(k=2, dim=20, bits=1)
        snapshot = model.class_hv.copy()
        flip_hdc_bits(model, np.array([0, 39]))
        assert (model.class_hv != snapshot).sum() == 2
        flip_hdc_bits(model, np.array([0, 39]))
        assert (model.class_hv == snapshot).all()

    def test_flip_out_of_range(self):
        model = make_model(k=2, dim=4, bits=1)
        with pytest.raises(IndexError):
            flip_hdc_bits(model, np.array([8]))
