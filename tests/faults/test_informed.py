"""Tests for the margin-aware white-box attack."""

import numpy as np
import pytest

from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier, HDCModel
from repro.datasets.synthetic import make_prototype_classification
from repro.faults.api import attack
from repro.faults.bitflip import num_bits_to_flip
from repro.faults.informed import dimension_importance


@pytest.fixture(scope="module")
def fitted():
    task = make_prototype_classification(
        "toy", num_features=40, num_classes=4, num_train=300, num_test=300,
        boundary_fraction=0.3, boundary_depth=(0.25, 0.45), seed=17,
    )
    encoder = Encoder(num_features=40, dim=4_000, seed=7)
    clf = HDCClassifier(encoder, num_classes=4, epochs=0).fit(
        task.train_x, task.train_y
    )
    queries = encoder.encode_batch(task.test_x)
    return clf.model, queries, np.asarray(task.test_y)


class TestDimensionImportance:
    def test_shape_and_range(self, fitted):
        model, queries, _ = fitted
        imp = dimension_importance(model, queries[:100])
        assert imp.shape == (4, 4_000)
        assert (imp >= 0).all()
        assert (imp <= 1.0).all()

    def test_discriminating_dims_score_higher(self):
        """A dimension where rivals all store the opposite bit outranks
        one where every class agrees."""
        hv = np.zeros((3, 8), dtype=np.uint8)
        hv[0, 0] = 1          # class 0 differs from both rivals at dim 0
        hv[:, 1] = 1          # everyone agrees at dim 1
        model = HDCModel(class_hv=hv, bits=1)
        rng = np.random.default_rng(0)
        queries = rng.integers(0, 2, (30, 8), dtype=np.uint8)
        imp = dimension_importance(model, queries)
        assert imp[0, 0] >= imp[0, 1]

    def test_multibit_rejected(self, fitted):
        model, queries, _ = fitted
        bad = HDCModel(class_hv=model.class_hv.copy(), bits=2)
        with pytest.raises(ValueError, match="1-bit"):
            dimension_importance(bad, queries[:10])

    def test_dim_mismatch(self, fitted):
        model, _, _ = fitted
        with pytest.raises(ValueError, match="dim"):
            dimension_importance(model, np.zeros((2, 10), dtype=np.uint8))


class TestInformedAttack:
    def test_budget_matches_random_attack(self, fitted):
        model, queries, _ = fitted
        rate = 0.06
        attacked, _ = attack(
            model, rate, "informed", np.random.default_rng(0),
            reference_queries=queries[:100],
        )
        flips = int((attacked.class_hv != model.class_hv).sum())
        assert flips == num_bits_to_flip(model.total_bits, rate)

    def test_victim_untouched(self, fitted):
        model, queries, _ = fitted
        snapshot = model.class_hv.copy()
        attack(model, 0.1, "informed", np.random.default_rng(1),
               reference_queries=queries[:50])
        assert (model.class_hv == snapshot).all()

    def test_stronger_than_random(self, fitted):
        """The security finding: margin-aware flips hurt far more than
        the same budget of random flips."""
        model, queries, labels = fitted
        clean = float(np.mean(model.predict(queries) == labels))
        rate = 0.08
        random_acc = np.mean([
            float(np.mean(
                attack(model, rate, "random",
                       np.random.default_rng(s))[0].predict(queries)
                == labels
            ))
            for s in range(3)
        ])
        informed_acc = np.mean([
            float(np.mean(
                attack(model, rate, "informed", np.random.default_rng(s),
                       reference_queries=queries[:150])[0].predict(queries)
                == labels
            ))
            for s in range(3)
        ])
        assert clean - informed_acc > (clean - random_acc) + 0.05

    def test_zero_budget_noop(self, fitted):
        model, queries, _ = fitted
        attacked, _ = attack(
            model, 0.0, "informed", np.random.default_rng(2),
            reference_queries=queries[:10],
        )
        assert (attacked.class_hv == model.class_hv).all()
