"""Tests for the unified fault-injection API and the deprecation shims."""

import numpy as np
import pytest

from repro.core.model import HDCModel
from repro.faults.api import (
    ClusteredBitflipInjector,
    FaultInjector,
    FaultMask,
    InformedBitflipInjector,
    RandomBitflipInjector,
    TargetedBitflipInjector,
    attack,
    inject,
    make_injector,
)
from repro.faults.bitflip import attack_hdc_model
from repro.faults.informed import attack_hdc_informed
from repro.faults.models import TransientFlipProcess


def make_model(k=3, dim=64, bits=1, seed=0):
    rng = np.random.default_rng(seed)
    hv = rng.integers(0, 1 << bits, (k, dim)).astype(np.uint8)
    return HDCModel(class_hv=hv, bits=bits)


class TestFaultMask:
    def test_sorted_and_validated(self):
        mask = FaultMask(bit_indices=np.array([5, 1, 3]), shape=(2, 8))
        assert (mask.bit_indices == [1, 3, 5]).all()
        assert mask.num_faults == 3
        assert mask.total_bits == 16

    def test_rejects_out_of_range(self):
        with pytest.raises(IndexError):
            FaultMask(bit_indices=np.array([16]), shape=(2, 8))
        with pytest.raises(IndexError):
            FaultMask(bit_indices=np.array([-1]), shape=(2, 8))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicates"):
            FaultMask(bit_indices=np.array([3, 3]), shape=(2, 8))

    def test_element_views(self):
        mask = FaultMask(bit_indices=np.array([0, 9, 15]), shape=(2, 8))
        classes, dims = mask.element_indices()
        assert (classes == [0, 1, 1]).all()
        assert (dims == [0, 1, 7]).all()
        assert (mask.per_class_counts() == [1, 2]).all()

    def test_chunk_views(self):
        mask = FaultMask(bit_indices=np.array([0, 1, 9]), shape=(2, 8))
        counts = mask.chunk_fault_counts(2)  # chunks of 4 dims
        assert (counts == [[2, 0], [1, 0]]).all()
        assert (mask.faulty_chunks(2) == [[True, False], [True, False]]).all()

    def test_chunk_geometry_validated(self):
        mask = FaultMask(bit_indices=np.array([0]), shape=(2, 8))
        with pytest.raises(ValueError, match="divisible"):
            mask.chunk_fault_counts(3)

    def test_apply_flips_exactly_masked_bits(self):
        model = make_model()
        mask = inject(model, 0.1, "random", np.random.default_rng(0))
        attacked = mask.applied_to(model)
        diff = np.flatnonzero(
            (attacked.class_hv != model.class_hv).reshape(-1)
        )
        assert (np.sort(mask.bit_indices) == diff).all()
        # Applying twice restores the original (XOR involution).
        mask.apply(attacked)
        assert (attacked.class_hv == model.class_hv).all()

    def test_apply_checks_shape(self):
        model = make_model(dim=64)
        mask = inject(model, 0.1, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="mask built for"):
            mask.apply(make_model(dim=32))

    def test_apply_bumps_model_version(self):
        model = make_model()
        before = model.version
        inject(model, 0.1, rng=np.random.default_rng(0)).apply(model)
        assert model.version > before

    def test_dict_round_trip(self):
        mask = FaultMask(
            bit_indices=np.array([1, 5]), shape=(2, 8), mode="random",
            rate=0.1,
        )
        back = FaultMask.from_dict(mask.to_dict())
        assert (back.bit_indices == mask.bit_indices).all()
        assert back.shape == mask.shape
        assert back.mode == mask.mode
        assert back.rate == mask.rate


class TestProtocol:
    def test_builtin_injectors_satisfy_protocol(self):
        for injector in (
            RandomBitflipInjector(),
            TargetedBitflipInjector(),
            ClusteredBitflipInjector(),
            InformedBitflipInjector(np.zeros((1, 64), dtype=np.uint8)),
        ):
            assert isinstance(injector, FaultInjector)

    def test_make_injector(self):
        assert isinstance(make_injector("random"), RandomBitflipInjector)
        assert make_injector("clustered", cluster_bits=128).cluster_bits == 128
        with pytest.raises(ValueError, match="mode"):
            make_injector("nope")

    def test_inject_accepts_instance(self):
        model = make_model()
        mask = inject(
            model, 0.1, RandomBitflipInjector(), np.random.default_rng(0)
        )
        assert mask.num_faults == round(0.1 * model.total_bits)

    def test_instance_plus_kwargs_rejected(self):
        model = make_model()
        with pytest.raises(TypeError, match="kwargs"):
            inject(
                model, 0.1, RandomBitflipInjector(),
                np.random.default_rng(0), cluster_bits=64,
            )

    def test_injection_is_pure(self):
        model = make_model()
        snapshot = model.class_hv.copy()
        inject(model, 0.2, "random", np.random.default_rng(0))
        assert (model.class_hv == snapshot).all()

    def test_custom_injector_duck_types(self):
        class FirstBitsInjector:
            def inject(self, model, rate, rng):
                count = round(rate * model.total_bits)
                return FaultMask(
                    bit_indices=np.arange(count),
                    shape=model.class_hv.shape,
                    bits=model.bits,
                    mode="first",
                    rate=rate,
                )

        model = make_model()
        attacked, mask = attack(
            model, 0.1, FirstBitsInjector(), np.random.default_rng(0)
        )
        assert isinstance(FirstBitsInjector(), FaultInjector)
        assert (mask.bit_indices == np.arange(mask.num_faults)).all()
        assert (
            attacked.class_hv.reshape(-1)[: mask.num_faults]
            != model.class_hv.reshape(-1)[: mask.num_faults]
        ).all()


class TestAttack:
    def test_returns_copy_and_mask(self):
        model = make_model()
        attacked, mask = attack(model, 0.1, "random", np.random.default_rng(0))
        assert attacked is not model
        assert (model.class_hv == make_model().class_hv).all()
        assert mask.num_faults == round(0.1 * model.total_bits)

    @pytest.mark.parametrize("mode", ["random", "targeted", "clustered"])
    def test_mask_matches_damage(self, mode):
        model = make_model(dim=1024)
        attacked, mask = attack(model, 0.05, mode, np.random.default_rng(3))
        diff = np.flatnonzero(
            (attacked.class_hv != model.class_hv).reshape(-1)
        )
        assert (np.sort(mask.bit_indices) == diff).all()

    def test_informed_mode(self):
        model = make_model(dim=256)
        queries = np.random.default_rng(1).integers(
            0, 2, (20, 256), dtype=np.uint8
        )
        attacked, mask = attack(
            model, 0.05, "informed", np.random.default_rng(0),
            reference_queries=queries,
        )
        assert mask.mode == "informed"
        assert mask.num_faults == round(0.05 * model.total_bits)
        diff = np.flatnonzero(
            (attacked.class_hv != model.class_hv).reshape(-1)
        )
        assert (mask.bit_indices == diff).all()


class TestDeprecatedShims:
    def test_attack_hdc_model_warns_and_matches(self):
        model = make_model(dim=512)
        with pytest.warns(DeprecationWarning, match="attack_hdc_model"):
            legacy = attack_hdc_model(
                model, 0.1, "random", np.random.default_rng(4)
            )
        new, _ = attack(model, 0.1, "random", np.random.default_rng(4))
        assert (legacy.class_hv == new.class_hv).all()

    def test_attack_hdc_model_clustered_kwarg(self):
        model = make_model(dim=2048)
        with pytest.warns(DeprecationWarning):
            legacy = attack_hdc_model(
                model, 0.05, "clustered", np.random.default_rng(5),
                cluster_bits=128,
            )
        new, _ = attack(
            model, 0.05, "clustered", np.random.default_rng(5),
            cluster_bits=128,
        )
        assert (legacy.class_hv == new.class_hv).all()

    def test_attack_hdc_model_still_checks_mode(self):
        model = make_model()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="mode"):
                attack_hdc_model(model, 0.1, "bogus", np.random.default_rng(0))

    def test_attack_hdc_informed_warns_and_matches(self):
        model = make_model(dim=256)
        queries = np.random.default_rng(1).integers(
            0, 2, (20, 256), dtype=np.uint8
        )
        with pytest.warns(DeprecationWarning, match="attack_hdc_informed"):
            legacy = attack_hdc_informed(
                model, 0.05, queries, np.random.default_rng(6)
            )
        new, _ = attack(
            model, 0.05, "informed", np.random.default_rng(6),
            reference_queries=queries,
        )
        assert (legacy.class_hv == new.class_hv).all()


class TestTransientProcessConvergence:
    def test_expose_uses_injector_and_keeps_mask(self):
        model = make_model(dim=512)
        process = TransientFlipProcess(0.05, seed=9)
        assert isinstance(process.injector, RandomBitflipInjector)
        before = model.class_hv.copy()
        flipped = process.expose(model)
        assert process.exposures == 1
        assert process.last_mask is not None
        assert process.last_mask.num_faults == flipped
        diff = np.flatnonzero((model.class_hv != before).reshape(-1))
        assert (process.last_mask.bit_indices == diff).all()

    def test_expose_matches_legacy_rng_stream(self):
        """Same seed, same damage as the pre-protocol implementation."""
        from repro.faults.bitflip import flip_hdc_bits, sample_random_bits

        new_model = make_model(dim=512)
        TransientFlipProcess(0.05, seed=9).expose(new_model)

        old_model = make_model(dim=512)
        rng = np.random.default_rng(9)
        flip_hdc_bits(
            old_model, sample_random_bits(old_model.total_bits, 0.05, rng)
        )
        assert (new_model.class_hv == old_model.class_hv).all()

    def test_custom_injector(self):
        model = make_model(dim=512)
        process = TransientFlipProcess(
            0.02, seed=1, injector=ClusteredBitflipInjector(cluster_bits=128)
        )
        process.expose(model)
        assert process.last_mask.mode == "clustered"


class TestUnseededCallStreams:
    """Regression: un-seeded inject/attack calls must not replay one mask.

    ``inject`` used to fall back to ``np.random.default_rng(0)`` on
    *every* call, so campaigns issuing back-to-back un-seeded attacks
    silently injected identical masks.  The fallback is now salted with
    a per-process call counter; explicit rng/seed streams are untouched.
    """

    def test_unseeded_back_to_back_masks_differ(self):
        model = make_model(dim=512)
        first = inject(model, 0.05)
        second = inject(model, 0.05)
        assert first.num_faults == second.num_faults > 0
        assert not np.array_equal(first.bit_indices, second.bit_indices)

    def test_unseeded_attacks_differ(self):
        model = make_model(dim=512)
        _, first = attack(model, 0.05)
        _, second = attack(model, 0.05)
        assert not np.array_equal(first.bit_indices, second.bit_indices)

    def test_explicit_rng_stream_unchanged(self):
        """The documented legacy stream: rng-passed calls stay

        bit-identical to sampling directly with the same generator."""
        from repro.faults.bitflip import sample_random_bits

        model = make_model(dim=512)
        mask = inject(model, 0.05, rng=np.random.default_rng(7))
        expected = np.sort(sample_random_bits(
            model.total_bits, 0.05, np.random.default_rng(7)
        ))
        assert (mask.bit_indices == expected).all()

    def test_explicit_rng_is_replayable(self):
        model = make_model(dim=512)
        a = inject(model, 0.05, rng=np.random.default_rng(3))
        b = inject(model, 0.05, rng=np.random.default_rng(3))
        assert (a.bit_indices == b.bit_indices).all()
