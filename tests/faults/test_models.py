"""Tests for the stochastic memory error processes."""

import numpy as np
import pytest

from repro.core.model import HDCModel
from repro.faults.models import (
    StuckAtFaultMap,
    TransientFlipProcess,
    dram_error_rate_for_interval,
)


def make_model(k=3, dim=200, seed=0):
    rng = np.random.default_rng(seed)
    return HDCModel(
        class_hv=rng.integers(0, 2, (k, dim), dtype=np.uint8), bits=1
    )


class TestTransientFlipProcess:
    def test_single_exposure_count(self):
        model = make_model()
        process = TransientFlipProcess(rate=0.1, seed=0)
        flipped = process.expose(model)
        assert flipped == 60  # 10% of 600

    def test_damage_accumulates(self):
        model = make_model(seed=1)
        clean = model.class_hv.copy()
        process = TransientFlipProcess(rate=0.05, seed=1)
        distances = []
        for _ in range(4):
            process.expose(model)
            distances.append(int(np.count_nonzero(model.class_hv != clean)))
        assert distances == sorted(distances)
        assert process.exposures == 4

    def test_bad_rate(self):
        with pytest.raises(ValueError, match="rate"):
            TransientFlipProcess(rate=1.5)


class TestStuckAtFaultMap:
    def test_apply_forces_values(self):
        model = make_model(seed=2)
        faults = StuckAtFaultMap(model.class_hv.shape, rate=0.2,
                                 rng=np.random.default_rng(0))
        faults.apply(model)
        flat = model.class_hv.reshape(-1)
        assert (flat[faults.indices] == faults.values).all()

    def test_writes_to_dead_cells_discarded(self):
        """After a write pass, re-applying the map restores stuck values —
        the semantics the recovery loop has to live with."""
        model = make_model(seed=3)
        faults = StuckAtFaultMap(model.class_hv.shape, rate=0.3,
                                 rng=np.random.default_rng(1))
        faults.apply(model)
        model.class_hv[:] = 1 - model.class_hv  # a global (blind) write
        changed = faults.apply(model)
        assert changed == faults.num_stuck
        flat = model.class_hv.reshape(-1)
        assert (flat[faults.indices] == faults.values).all()

    def test_rate_zero_is_noop(self):
        model = make_model(seed=4)
        snapshot = model.class_hv.copy()
        faults = StuckAtFaultMap(model.class_hv.shape, rate=0.0,
                                 rng=np.random.default_rng(2))
        assert faults.apply(model) == 0
        assert (model.class_hv == snapshot).all()

    def test_shape_mismatch(self):
        model = make_model()
        faults = StuckAtFaultMap((2, 100), rate=0.1,
                                 rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="shape"):
            faults.apply(model)

    def test_multibit_rejected(self):
        hv = np.zeros((2, 10), dtype=np.uint8)
        model = HDCModel(class_hv=hv, bits=2)
        faults = StuckAtFaultMap((2, 10), rate=0.1,
                                 rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="1-bit"):
            faults.apply(model)


class TestDRAMBridge:
    def test_base_interval_error_free(self):
        assert dram_error_rate_for_interval(64.0) == 0.0

    def test_relaxation_produces_errors(self):
        assert dram_error_rate_for_interval(500.0) > 0.01
