"""Package-level surface tests: imports, version, public API integrity."""

import importlib

import pytest

import repro


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.baselines",
            "repro.faults",
            "repro.pim",
            "repro.datasets",
            "repro.experiments",
            "repro.analysis",
            "repro.obs",
            "repro.serve",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        """Every name a subpackage exports must actually exist on it."""
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name} missing"

    def test_no_duplicate_exports(self):
        for module in ("repro.core", "repro.pim", "repro.faults",
                       "repro.analysis"):
            mod = importlib.import_module(module)
            assert len(mod.__all__) == len(set(mod.__all__)), module

    def test_core_quick_tour(self):
        """The README/package-docstring quickstart runs as written."""
        from repro import datasets
        from repro.core import Encoder, HDCClassifier

        data = datasets.load("ucihar", max_train=200, max_test=100)
        enc = Encoder(num_features=data.num_features, dim=1_000, seed=7)
        clf = HDCClassifier(enc, num_classes=data.num_classes).fit(
            data.train_x, data.train_y
        )
        assert clf.score(data.test_x, data.test_y) > 0.5
