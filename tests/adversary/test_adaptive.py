"""Tests for the publish probe, adaptive adversary, and scenario driver."""

import numpy as np
import pytest

from repro.adversary.adaptive import (
    SCENARIOS,
    AdaptiveAdversary,
    PublishProbe,
    run_adaptive_scenario,
)
from repro.core.model import HDCModel
from repro.core.pipeline import RecoveryExperiment
from repro.core.recovery import RecoveryConfig
from repro.datasets.synthetic import make_prototype_classification
from repro.faults.bitflip import flip_hdc_bits


def make_model(k=4, dim=512, seed=0):
    rng = np.random.default_rng(seed)
    hv = rng.integers(0, 2, (k, dim)).astype(np.uint8)
    return HDCModel(class_hv=hv, bits=1)


def experiment(seed=0):
    ds = make_prototype_classification(
        "adaptive", num_features=10, num_classes=3,
        num_train=90, num_test=60, seed=seed,
    )
    return RecoveryExperiment(
        dataset=ds, dim=1024, epochs=1, levels=8, seed=seed
    )


RECOVERY = RecoveryConfig(num_chunks=16, block_size=64)


class TestPublishProbe:
    def test_records_delta_per_publish(self):
        model = make_model()
        probe = PublishProbe()
        probe.prime(model)
        flip_hdc_bits(model, np.array([0, 65, 700]))
        generation = probe.publish(model)
        assert generation == 1
        assert probe.publishes == 1
        assert len(probe.deltas) == 1
        from repro.core.packed import PackedHypervectors, unpack

        changed = unpack(PackedHypervectors(
            words=probe.deltas[0], dim=model.dim, single=False
        ))
        flat = np.flatnonzero(changed.reshape(-1))
        assert (flat == [0, 65, 700]).all()

    def test_unprimed_first_publish_records_no_delta(self):
        model = make_model()
        probe = PublishProbe()
        probe.publish(model)
        assert probe.publishes == 1
        assert probe.deltas == []

    def test_forwards_to_inner(self):
        class Inner:
            def __init__(self):
                self.published = 0
                self.touched = 0
                self.ended = 0

            def publish(self, model):
                self.published += 1
                return 41 + self.published

            def touch(self):
                self.touched += 1

            def end_writing(self):
                self.ended += 1

        inner = Inner()
        probe = PublishProbe(inner=inner)
        model = make_model()
        assert probe.publish(model) == 42  # inner's generation wins
        probe.touch()
        probe.end_writing()
        assert (inner.published, inner.touched, inner.ended) == (1, 1, 1)

    def test_probe_does_not_mutate_model(self):
        model = make_model()
        before = model.class_hv.copy()
        version = model.version
        probe = PublishProbe()
        probe.prime(model)
        probe.publish(model)
        assert (model.class_hv == before).all()
        assert model.version == version


class TestAdaptiveAdversary:
    def test_blind_strike_is_uniform_and_seeded(self):
        model_a, model_b = make_model(), make_model()
        report_a = AdaptiveAdversary(
            rate=0.02, num_chunks=16, seed=5
        ).strike(model_a)
        report_b = AdaptiveAdversary(
            rate=0.02, num_chunks=16, seed=5
        ).strike(model_b)
        assert report_a.targeted_bits == 0
        assert report_a.injected_bits == round(0.02 * model_a.total_bits)
        assert (
            report_a.mask.bit_indices == report_b.mask.bit_indices
        ).all()
        assert (model_a.class_hv == model_b.class_hv).all()

    def test_observe_builds_heat_from_deltas(self):
        model = make_model(k=4, dim=512)
        probe = PublishProbe()
        probe.prime(model)
        # Repair-like writes confined to class 1, chunk 3 (m=16 -> d=32).
        flip_hdc_bits(model, 512 + 3 * 32 + np.arange(8))
        probe.publish(model)
        adversary = AdaptiveAdversary(rate=0.02, num_chunks=16, seed=0)
        consumed = adversary.observe(probe)
        assert consumed == 1
        assert adversary.heat is not None
        assert adversary.heat[1, 3] == 8
        assert adversary.heat.sum() == 8

    def test_strike_targets_hot_cells(self):
        model = make_model(k=4, dim=512)
        probe = PublishProbe()
        probe.prime(model)
        flip_hdc_bits(model, 512 + 3 * 32 + np.arange(8))
        probe.publish(model)
        adversary = AdaptiveAdversary(rate=0.01, num_chunks=16, seed=0)
        adversary.observe(probe)
        report = adversary.strike(model)
        assert report.hot_cells == 1
        # budget = round(0.01 * 2048) = 20, under the 32-bit cell
        # capacity: every injected bit lands in the hot cell.
        assert report.injected_bits == 20
        cell_lo, cell_hi = 512 + 3 * 32, 512 + 4 * 32
        in_cell = (
            (report.mask.bit_indices >= cell_lo)
            & (report.mask.bit_indices < cell_hi)
        )
        assert in_cell.sum() == report.targeted_bits == 20

    def test_strike_spills_past_cell_capacity(self):
        model = make_model(k=4, dim=512)
        probe = PublishProbe()
        probe.prime(model)
        flip_hdc_bits(model, 512 + 3 * 32 + np.arange(8))
        probe.publish(model)
        adversary = AdaptiveAdversary(rate=0.02, num_chunks=16, seed=0)
        adversary.observe(probe)
        report = adversary.strike(model)
        # budget = round(0.02 * 2048) = 41 > 32: the hot cell fills and
        # the 9-bit spill re-samples uniformly outside the chosen set.
        assert report.injected_bits == 41
        assert report.targeted_bits == 32
        cell_lo, cell_hi = 512 + 3 * 32, 512 + 4 * 32
        in_cell = (
            (report.mask.bit_indices >= cell_lo)
            & (report.mask.bit_indices < cell_hi)
        )
        # The cell is saturated, so the spill necessarily lands outside.
        assert in_cell.sum() == 32
        assert np.unique(report.mask.bit_indices).size == 41

    def test_heat_decays(self):
        model = make_model(k=4, dim=512)
        probe = PublishProbe()
        probe.prime(model)
        flip_hdc_bits(model, np.arange(4))
        probe.publish(model)
        adversary = AdaptiveAdversary(
            rate=0.02, num_chunks=16, decay=0.5, seed=0
        )
        adversary.observe(probe)
        assert adversary.heat[0, 0] == 4
        adversary.observe(probe)  # nothing new: decay only
        assert adversary.heat[0, 0] == 2

    def test_validates_config(self):
        with pytest.raises(ValueError):
            AdaptiveAdversary(rate=1.5)
        with pytest.raises(ValueError):
            AdaptiveAdversary(num_chunks=0)
        with pytest.raises(ValueError):
            AdaptiveAdversary(decay=-0.1)
        model = make_model(dim=500)  # 500 % 16 != 0
        with pytest.raises(ValueError):
            AdaptiveAdversary(num_chunks=16).strike(model)


class TestRunAdaptiveScenario:
    def test_static_matches_attack_and_recover(self):
        """The static scenario is attack_and_recover, event for event."""
        exp = experiment()
        baseline = exp.attack_and_recover(
            0.05, config=RECOVERY, passes=2, seed=0
        )
        outcome = run_adaptive_scenario(
            exp, scenario="static", error_rate=0.05,
            config=RECOVERY, passes=2, seed=0,
        )
        assert outcome.accuracy_trace == baseline.accuracy_trace
        assert outcome.final_accuracy == baseline.recovered_accuracy
        assert outcome.attacked_accuracy == baseline.attacked_accuracy
        assert outcome.strikes == 0
        assert outcome.struck_bits == 0

    def test_scenarios_are_reproducible(self):
        exp = experiment()
        for scenario in SCENARIOS:
            a = run_adaptive_scenario(
                exp, scenario=scenario, error_rate=0.05,
                config=RECOVERY, passes=3, seed=1,
            )
            b = run_adaptive_scenario(
                exp, scenario=scenario, error_rate=0.05,
                config=RECOVERY, passes=3, seed=1,
            )
            assert a.accuracy_trace == b.accuracy_trace, scenario
            assert a.struck_bits == b.struck_bits, scenario
            assert a.trace.to_jsonl() == b.trace.to_jsonl(), scenario

    def test_adaptive_strikes_between_passes(self):
        exp = experiment()
        outcome = run_adaptive_scenario(
            exp, scenario="adaptive", error_rate=0.05,
            config=RECOVERY, passes=3, seed=0,
        )
        assert outcome.strikes == 2  # between passes, none after the last
        assert outcome.struck_bits > 0
        assert outcome.publishes > 0
        assert outcome.targeted_bits > 0  # publishes were observed
        strike_events = outcome.trace.by_kind("strike")
        assert len(strike_events) == 2
        pass_events = outcome.trace.by_kind("adaptive-pass")
        assert len(pass_events) == 3
        assert outcome.accuracy_trace == tuple(
            e.accuracy for e in pass_events
        )

    def test_no_recovery_scenario_never_publishes_or_targets(self):
        exp = experiment()
        outcome = run_adaptive_scenario(
            exp, scenario="adaptive-no-recovery", error_rate=0.05,
            config=RECOVERY, passes=3, seed=0,
        )
        assert outcome.publishes == 0
        assert outcome.targeted_bits == 0  # blind: uniform fallback only
        assert outcome.strikes == 2
        assert outcome.recovery_trace is None

    def test_same_attacker_budget_across_adaptive_scenarios(self):
        exp = experiment()
        with_recovery = run_adaptive_scenario(
            exp, scenario="adaptive", error_rate=0.05,
            config=RECOVERY, passes=3, seed=0,
        )
        without = run_adaptive_scenario(
            exp, scenario="adaptive-no-recovery", error_rate=0.05,
            config=RECOVERY, passes=3, seed=0,
        )
        assert with_recovery.initial_bits == without.initial_bits
        assert with_recovery.struck_bits == without.struck_bits

    def test_validates_scenario_and_passes(self):
        exp = experiment()
        with pytest.raises(ValueError):
            run_adaptive_scenario(
                exp, scenario="nope", error_rate=0.05, config=RECOVERY
            )
        with pytest.raises(ValueError):
            run_adaptive_scenario(
                exp, scenario="static", error_rate=0.05,
                config=RECOVERY, passes=0,
            )
