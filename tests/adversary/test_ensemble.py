"""Tests for the seed-variant differential ensemble."""

import numpy as np
import pytest

from repro.adversary.ensemble import DifferentialEnsemble
from repro.datasets.synthetic import make_prototype_classification


def small_dataset(seed=0):
    return make_prototype_classification(
        "ens", num_features=10, num_classes=3,
        num_train=90, num_test=60, seed=seed,
    )


def small_ensemble(k=3, seed=0):
    return DifferentialEnsemble.train(
        small_dataset(), k=k, dim=512, epochs=1, levels=8, base_seed=seed,
    )


class TestTraining:
    def test_members_are_seed_variants(self):
        ens = small_ensemble()
        assert ens.num_members == 3
        models = [m.model.class_hv for m in ens.members]
        # Different codebook seeds -> different class hypervectors.
        assert not np.array_equal(models[0], models[1])
        assert not np.array_equal(models[1], models[2])

    def test_training_is_deterministic(self):
        a, b = small_ensemble(), small_ensemble()
        for ma, mb in zip(a.members, b.members):
            assert (ma.model.class_hv == mb.model.class_hv).all()

    def test_rejects_tiny_ensembles(self):
        with pytest.raises(ValueError):
            DifferentialEnsemble.train(small_dataset(), k=1, dim=256)
        with pytest.raises(ValueError):
            DifferentialEnsemble([])

    def test_rejects_mixed_num_classes(self):
        ens3 = small_ensemble()
        other = DifferentialEnsemble.train(
            make_prototype_classification(
                "other", num_features=10, num_classes=4,
                num_train=80, num_test=40, seed=1,
            ),
            k=2, dim=512, epochs=1, levels=8,
        )
        with pytest.raises(ValueError):
            DifferentialEnsemble([ens3.members[0], other.members[0]])


class TestDisagreements:
    def test_predictions_shape_and_majority(self):
        ens = small_ensemble()
        ds = small_dataset()
        report = ens.disagreements(ds.test_x)
        assert report.predictions.shape == (3, ds.num_test)
        assert report.majority.shape == (ds.num_test,)
        assert report.disagree_mask.shape == (ds.num_test,)
        # Majority label must be one of the member predictions.
        for i in range(ds.num_test):
            assert report.majority[i] in report.predictions[:, i]

    def test_disagreement_mask_matches_columns(self):
        ens = small_ensemble()
        report = ens.disagreements(small_dataset().test_x)
        expected = np.array([
            np.unique(report.predictions[:, i]).size > 1
            for i in range(report.num_inputs)
        ])
        assert (report.disagree_mask == expected).all()
        assert report.disagreements == int(expected.sum())
        assert report.disagreement_rate == pytest.approx(
            expected.mean()
        )
        assert (
            report.disagreement_indices() == np.flatnonzero(expected)
        ).all()

    def test_scan_is_deterministic(self):
        ens = small_ensemble()
        x = small_dataset().test_x
        a, b = ens.disagreements(x), ens.disagreements(x)
        assert (a.predictions == b.predictions).all()
        assert (a.disagree_mask == b.disagree_mask).all()

    def test_majority_tie_breaks_low(self):
        # Two members, guaranteed 1-1 votes wherever they disagree: the
        # majority must take the lower label (argmax tie order).
        ens = DifferentialEnsemble(small_ensemble().members[:2])
        report = ens.disagreements(small_dataset().test_x)
        for i in report.disagreement_indices():
            assert report.majority[i] == report.predictions[:, i].min()
