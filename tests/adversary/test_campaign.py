"""Tests for the campaign driver, scorecard, and campaign trace."""

import numpy as np
import pytest

from repro.adversary.campaign import CampaignConfig, run_campaign
from repro.core.recovery import RecoveryConfig
from repro.datasets.synthetic import make_prototype_classification
from repro.obs.scorecard import adversary_scorecard
from repro.obs.trace import CampaignEvent, CampaignTrace


def dataset(seed=0):
    return make_prototype_classification(
        "campaign", num_features=10, num_classes=3,
        num_train=90, num_test=60, seed=seed,
    )


CONFIG = CampaignConfig(
    dim=1024,
    epochs=1,
    levels=8,
    probes=24,
    search_inputs=3,
    bitflip_budget=24,
    bitflip_candidates=48,
    feature_budget=6,
    feature_candidates=24,
    error_rate=0.05,
    strike_rate=0.02,
    passes=2,
    recovery=RecoveryConfig(num_chunks=16, block_size=64),
    seed=0,
)


class TestCampaignTraceRoundtrip:
    def test_jsonl_roundtrip_exact(self):
        trace = CampaignTrace()
        trace.record(CampaignEvent(
            index=0, kind="differential", scenario="", seed=-1,
            queries=32, successes=3, bits_flipped=0,
        ))
        trace.record(CampaignEvent(
            index=1, kind="adaptive-pass", scenario="adaptive", seed=7,
            queries=64, successes=12, bits_flipped=99,
            accuracy=0.8437500000000001,
        ))
        back = CampaignTrace.from_jsonl(trace.to_jsonl())
        assert back.events == trace.events
        assert back.events[1].accuracy == 0.8437500000000001

    def test_write_read_jsonl(self, tmp_path):
        trace = CampaignTrace()
        trace.record(CampaignEvent(
            index=0, kind="strike", scenario="adaptive", seed=1,
            queries=0, successes=5, bits_flipped=41,
        ))
        path = trace.write_jsonl(tmp_path / "campaign.jsonl")
        back = CampaignTrace.read_jsonl(path)
        assert back.events == trace.events
        assert back.events[0].accuracy is None

    def test_aggregates(self):
        trace = CampaignTrace()
        trace.record(CampaignEvent(
            index=0, kind="adaptive-pass", scenario="adaptive", seed=0,
            queries=10, successes=1, bits_flipped=2, accuracy=0.5,
        ))
        trace.record(CampaignEvent(
            index=1, kind="strike", scenario="adaptive", seed=0,
            queries=0, successes=3, bits_flipped=4,
        ))
        trace.record(CampaignEvent(
            index=2, kind="adaptive-pass", scenario="adaptive", seed=0,
            queries=10, successes=0, bits_flipped=0, accuracy=0.75,
        ))
        assert trace.accuracy_trace("adaptive") == [0.5, 0.75]
        assert len(trace.by_kind("strike")) == 1
        assert trace.bits_flipped == 6
        assert trace.summary_table()  # renders without error


class TestAdversaryScorecard:
    def test_builder_rates(self):
        card = adversary_scorecard(
            ensemble_size=3, probes=40, disagreements=4,
            bitflip_successes=2, bitflip_attempts=4, bitflip_total_flips=30,
            feature_successes=0, feature_attempts=4, feature_total_nudges=0,
            clean_accuracy=0.95,
            static_recovered_accuracy=0.93,
            adaptive_recovered_accuracy=0.88,
            adaptive_unrecovered_accuracy=0.80,
        )
        assert card.disagreement_rate == pytest.approx(0.1)
        assert card.bitflip_success_rate == pytest.approx(0.5)
        assert card.bitflip_mean_flips == pytest.approx(15.0)
        assert card.feature_success_rate == 0.0
        assert np.isnan(card.feature_mean_nudges)
        assert card.adaptive_delta == pytest.approx(0.05)
        assert card.recovery_benefit_under_adaptive == pytest.approx(0.08)
        assert card.recovery_helps_under_adaptive
        assert "n/a" in card.render()

    def test_hurts_flag(self):
        card = adversary_scorecard(
            ensemble_size=2, probes=1, disagreements=0,
            bitflip_successes=0, bitflip_attempts=0, bitflip_total_flips=0,
            feature_successes=0, feature_attempts=0, feature_total_nudges=0,
            clean_accuracy=1.0,
            static_recovered_accuracy=1.0,
            adaptive_recovered_accuracy=0.5,
            adaptive_unrecovered_accuracy=0.7,
        )
        assert not card.recovery_helps_under_adaptive
        assert "HURTS" in card.render()


class TestRunCampaign:
    @pytest.fixture(scope="class")
    def result(self):
        return run_campaign(dataset(), CONFIG)

    def test_trace_covers_every_step(self, result):
        kinds = [e.kind for e in result.trace]
        assert kinds.count("differential") == 1
        assert kinds.count("bitflip-search") == 1
        assert kinds.count("feature-search") == 1
        # 3 scenarios x 2 passes; strikes only in the 2 adaptive ones.
        assert kinds.count("adaptive-pass") == 6
        assert kinds.count("strike") == 2
        assert [e.index for e in result.trace] == list(range(len(kinds)))

    def test_scorecard_joins_outcomes(self, result):
        card = result.scorecard
        assert card.probes == 24
        assert card.ensemble_size == 3
        assert 0.0 <= card.disagreement_rate <= 1.0
        assert card.static_recovered_accuracy == (
            result.outcomes["static"].final_accuracy
        )
        assert card.adaptive_recovered_accuracy == (
            result.outcomes["adaptive"].final_accuracy
        )
        assert card.adaptive_unrecovered_accuracy == (
            result.outcomes["adaptive-no-recovery"].final_accuracy
        )
        assert card.clean_accuracy == result.experiment.clean_accuracy

    def test_campaign_is_reproducible(self, result):
        again = run_campaign(dataset(), CONFIG)
        assert again.trace.to_jsonl() == result.trace.to_jsonl()
        assert again.scorecard.disagreement_rate == (
            result.scorecard.disagreement_rate
        )
        assert again.scorecard.adaptive_recovered_accuracy == (
            result.scorecard.adaptive_recovered_accuracy
        )

    def test_searches_start_from_agreed_inputs(self, result):
        agreed = set(
            np.flatnonzero(~result.disagreement.disagree_mask).tolist()
        )
        assert len(result.bitflip_results) == CONFIG.search_inputs
        assert len(result.feature_results) == CONFIG.search_inputs
        assert agreed  # the scan left something to search from

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(ensemble_size=1)
        with pytest.raises(ValueError):
            CampaignConfig(probes=0)
        with pytest.raises(ValueError):
            CampaignConfig(
                dim=1000, recovery=RecoveryConfig(num_chunks=16)
            )
