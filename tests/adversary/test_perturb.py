"""Tests for the bit-flip and feature-space perturbation searches."""

import numpy as np
import pytest

from repro.adversary.ensemble import DifferentialEnsemble
from repro.adversary.perturb import BitflipSearch, FeatureSearch
from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier
from repro.datasets.synthetic import make_prototype_classification


def dataset(seed=0):
    return make_prototype_classification(
        "perturb", num_features=10, num_classes=3,
        num_train=90, num_test=40, seed=seed,
    )


def fitted(seed=0, dim=512):
    ds = dataset()
    encoder = Encoder(num_features=ds.num_features, dim=dim, levels=8,
                      seed=seed)
    clf = HDCClassifier(
        encoder, num_classes=ds.num_classes, epochs=1, seed=seed
    ).fit(ds.train_x, ds.train_y)
    return ds, clf


class TestBitflipSearch:
    def test_finds_misclassification(self):
        ds, clf = fitted()
        packed = clf.encoder.encode_packed(ds.test_x)
        result = BitflipSearch(budget=128, candidates=128, seed=0).attack(
            clf.model, packed[0]
        )
        assert result.success
        assert result.final_label != result.original_label
        assert result.steps == len(result.changed) > 0
        assert result.margin_trace[-1] < 0
        # The perturbed words really do misclassify.
        sims = clf.model.similarities(
            type(packed)(words=result.perturbed[None, :], dim=packed.dim,
                         single=True)
        )
        assert int(np.argmax(sims[0])) == result.final_label

    def test_margin_trace_monotone_decreasing(self):
        ds, clf = fitted()
        packed = clf.encoder.encode_packed(ds.test_x)
        result = BitflipSearch(budget=64, candidates=64, seed=1).attack(
            clf.model, packed[1]
        )
        trace = np.asarray(result.margin_trace)
        assert (np.diff(trace) < 0).all()

    def test_deterministic(self):
        ds, clf = fitted()
        packed = clf.encoder.encode_packed(ds.test_x)
        a = BitflipSearch(budget=32, candidates=64, seed=3).attack(
            clf.model, packed[2]
        )
        b = BitflipSearch(budget=32, candidates=64, seed=3).attack(
            clf.model, packed[2]
        )
        assert a.changed == b.changed
        assert a.margin_trace == b.margin_trace
        assert (a.perturbed == b.perturbed).all()

    def test_budget_bounds_flips(self):
        ds, clf = fitted()
        packed = clf.encoder.encode_packed(ds.test_x)
        result = BitflipSearch(budget=3, candidates=32, seed=0).attack(
            clf.model, packed[0]
        )
        assert result.steps <= 3

    def test_accepts_unpacked_query(self):
        ds, clf = fitted()
        from repro.core.packed import unpack

        packed = clf.encoder.encode_packed(ds.test_x)
        raw = unpack(packed)[0]
        a = BitflipSearch(budget=16, candidates=32, seed=5).attack(
            clf.model, raw
        )
        b = BitflipSearch(budget=16, candidates=32, seed=5).attack(
            clf.model, packed[0]
        )
        assert a.changed == b.changed

    def test_validates_inputs(self):
        ds, clf = fitted()
        packed = clf.encoder.encode_packed(ds.test_x)
        with pytest.raises(ValueError):
            BitflipSearch(budget=0)
        with pytest.raises(ValueError):
            BitflipSearch(candidates=0)
        with pytest.raises(ValueError):
            # A batch is not a single query.
            BitflipSearch().attack(clf.model, packed[0:2])


class TestFeatureSearch:
    def test_single_model_label_change(self):
        ds, clf = fitted()
        result = FeatureSearch(budget=32, candidates=64, seed=0).attack(
            clf, ds.test_x[0]
        )
        if result.success:
            assert (
                int(clf.predict(result.perturbed[None, :])[0])
                != result.original_label
            )
            assert result.final_label != result.original_label

    def test_perturbed_stays_in_encoder_range(self):
        ds, clf = fitted()
        result = FeatureSearch(budget=16, candidates=32, seed=1).attack(
            clf, ds.test_x[1]
        )
        low, high = clf.encoder.low, clf.encoder.high
        assert (result.perturbed >= low).all()
        assert (result.perturbed <= high).all()

    def test_differential_success_means_disagreement(self):
        ds = dataset()
        ens = DifferentialEnsemble.train(
            ds, k=3, dim=512, epochs=1, levels=8, base_seed=0
        )
        report = ens.disagreements(ds.test_x)
        agreed = np.flatnonzero(~report.disagree_mask)
        result = FeatureSearch(budget=32, candidates=64, seed=2).attack(
            ens, ds.test_x[agreed[0]]
        )
        if result.success:
            labels = ens.predict_all(result.perturbed[None, :])[:, 0]
            assert np.unique(labels).size > 1

    def test_deterministic(self):
        ds, clf = fitted()
        a = FeatureSearch(budget=16, candidates=32, seed=7).attack(
            clf, ds.test_x[3]
        )
        b = FeatureSearch(budget=16, candidates=32, seed=7).attack(
            clf, ds.test_x[3]
        )
        assert a.changed == b.changed
        assert (a.perturbed == b.perturbed).all()

    def test_default_step_is_one_level(self):
        ds, clf = fitted()
        search = FeatureSearch(budget=1, candidates=4, seed=0)
        result = search.attack(clf, ds.test_x[0])
        if result.steps:
            delta = np.abs(
                result.perturbed - np.clip(ds.test_x[0], 0.0, 1.0)
            )
            expected = (clf.encoder.high - clf.encoder.low) / (
                clf.encoder.levels - 1
            )
            moved = delta[delta > 0]
            assert moved.size >= 1
            assert np.all(moved <= expected + 1e-12)

    def test_validates_inputs(self):
        ds, clf = fitted()
        with pytest.raises(ValueError):
            FeatureSearch(step=0.0)
        with pytest.raises(ValueError):
            FeatureSearch().attack(clf, ds.test_x[:2])
