"""Tests for the numpy MLP baseline."""

import numpy as np
import pytest

from repro.baselines.mlp import MLPClassifier
from repro.datasets.synthetic import make_prototype_classification


@pytest.fixture(scope="module")
def task():
    return make_prototype_classification(
        "toy", num_features=30, num_classes=3, num_train=300, num_test=150,
        boundary_fraction=0.3, boundary_depth=(0.25, 0.45), seed=9,
    )


@pytest.fixture(scope="module")
def fitted(task):
    return MLPClassifier(
        task.num_features, task.num_classes, hidden=(32,), epochs=25, seed=0
    ).fit(task.train_x, task.train_y)


class TestTraining:
    def test_learns(self, task, fitted):
        assert fitted.score(task.test_x, task.test_y) > 0.85

    def test_beats_untrained(self, task, fitted):
        fresh = MLPClassifier(
            task.num_features, task.num_classes, hidden=(32,), epochs=0, seed=0
        ).fit(task.train_x, task.train_y)
        assert fitted.score(task.test_x, task.test_y) > fresh.score(
            task.test_x, task.test_y
        )

    def test_deterministic(self, task):
        a = MLPClassifier(task.num_features, task.num_classes, hidden=(16,),
                          epochs=3, seed=5).fit(task.train_x, task.train_y)
        b = MLPClassifier(task.num_features, task.num_classes, hidden=(16,),
                          epochs=3, seed=5).fit(task.train_x, task.train_y)
        for wa, wb in zip(a.get_weights(), b.get_weights()):
            assert np.allclose(wa, wb)

    def test_two_hidden_layers(self, task):
        clf = MLPClassifier(task.num_features, task.num_classes,
                            hidden=(24, 16), epochs=15, seed=0)
        clf.fit(task.train_x, task.train_y)
        assert clf.score(task.test_x, task.test_y) > 0.8

    def test_sample_mismatch(self, task):
        clf = MLPClassifier(task.num_features, task.num_classes)
        with pytest.raises(ValueError, match="sample count"):
            clf.fit(task.train_x, task.train_y[:-1])


class TestPrediction:
    def test_proba_sums_to_one(self, task, fitted):
        p = fitted.predict_proba(task.test_x[:10])
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_predict_single_sample(self, task, fitted):
        pred = fitted.predict(task.test_x[0])
        assert pred.shape == (1,)

    def test_nonfinite_weights_do_not_crash(self, task, fitted):
        """Corrupted deployments produce inf weights; prediction must
        stay defined (the hardware would emit garbage, not crash)."""
        broken = fitted.clone()
        weights = fitted.get_weights()
        weights[0] = weights[0].copy()
        weights[0][0, 0] = np.inf
        broken.set_weights(weights)
        preds = broken.predict(task.test_x[:5])
        assert preds.shape == (5,)


class TestWeightedModelInterface:
    def test_roundtrip(self, task, fitted):
        clone = fitted.clone()
        clone.set_weights(fitted.get_weights())
        assert (clone.predict(task.test_x) == fitted.predict(task.test_x)).all()

    def test_get_weights_is_copy(self, fitted):
        w = fitted.get_weights()
        w[0][:] = 0.0
        assert fitted.weights[0].any()

    def test_set_weights_shape_checked(self, fitted):
        weights = fitted.get_weights()
        weights[0] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape"):
            fitted.clone().set_weights(weights)

    def test_set_weights_count_checked(self, fitted):
        with pytest.raises(ValueError, match="expected"):
            fitted.clone().set_weights(fitted.get_weights()[:-1])

    def test_clone_is_unfitted_copy(self, fitted, task):
        clone = fitted.clone()
        assert clone.hidden == fitted.hidden
        # Fresh init, not the trained weights.
        assert not np.allclose(clone.weights[0], fitted.weights[0])


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_features=0, num_classes=3),
            dict(num_features=4, num_classes=1),
            dict(num_features=4, num_classes=3, hidden=(0,)),
            dict(num_features=4, num_classes=3, epochs=-1),
            dict(num_features=4, num_classes=3, batch_size=0),
        ],
    )
    def test_bad_construction(self, kwargs):
        with pytest.raises(ValueError):
            MLPClassifier(**kwargs)
