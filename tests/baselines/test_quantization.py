"""Tests for the bit-addressable fixed-point and float32 tensors."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.baselines.quantization import FixedPointTensor, FloatTensor


float_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=2, max_side=16),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


class TestFixedPointTensor:
    @given(float_arrays)
    def test_roundtrip_error_bounded(self, values):
        fp = FixedPointTensor.from_float(values, width=8)
        restored = fp.to_float()
        assert restored.shape == values.shape
        # Quantisation error is at most half a step.
        assert np.abs(restored - values).max() <= fp.scale / 2 + 1e-12

    def test_signed_representation(self):
        fp = FixedPointTensor.from_float(np.array([-1.0, 0.0, 1.0]), width=8)
        out = fp.to_float()
        assert out[0] < 0 < out[2]
        assert out[1] == 0.0

    def test_total_bits(self):
        fp = FixedPointTensor.from_float(np.zeros((3, 4)), width=8)
        assert fp.total_bits == 96

    def test_msb_flip_is_catastrophic(self):
        """Flipping the sign bit moves a weight by the full scale — the
        paper's motivation for the targeted attack."""
        fp = FixedPointTensor.from_float(np.array([0.5]), width=8, scale=0.01)
        before = fp.to_float()[0]
        fp.flip_bits(np.array([7]))  # MSB of element 0
        after = fp.to_float()[0]
        assert abs(after - before) > 1.0  # 128 * scale

    def test_lsb_flip_is_tiny(self):
        fp = FixedPointTensor.from_float(np.array([0.5]), width=8, scale=0.01)
        before = fp.to_float()[0]
        fp.flip_bits(np.array([0]))
        assert abs(fp.to_float()[0] - before) == pytest.approx(0.01)

    def test_double_flip_restores(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=10)
        fp = FixedPointTensor.from_float(values)
        snapshot = fp.raw.copy()
        fp.flip_bits(np.array([5, 17, 33]))
        fp.flip_bits(np.array([5, 17, 33]))
        assert (fp.raw == snapshot).all()

    def test_duplicate_flips_in_one_call_cancel(self):
        fp = FixedPointTensor.from_float(np.zeros(2))
        snapshot = fp.raw.copy()
        fp.flip_bits(np.array([3, 3]))
        assert (fp.raw == snapshot).all()

    def test_msb_first_order(self):
        fp = FixedPointTensor.from_float(np.zeros(3), width=4)
        order = fp.msb_first_bit_order()
        # First plane: bit 3 of every element.
        assert list(order[:3] % 4) == [3, 3, 3]
        assert list(order[-3:] % 4) == [0, 0, 0]
        assert len(set(order.tolist())) == fp.total_bits

    def test_flip_out_of_range(self):
        fp = FixedPointTensor.from_float(np.zeros(2), width=8)
        with pytest.raises(IndexError):
            fp.flip_bits(np.array([16]))

    def test_copy_independent(self):
        fp = FixedPointTensor.from_float(np.ones(4))
        c = fp.copy()
        c.flip_bits(np.array([0]))
        assert (fp.raw != c.raw).any()

    def test_saturation_clips(self):
        fp = FixedPointTensor.from_float(
            np.array([10.0, -10.0]), width=8, scale=0.01
        )
        out = fp.to_float()
        assert out[0] == pytest.approx(1.27)
        assert out[1] == pytest.approx(-1.28)

    @pytest.mark.parametrize("width", [1, 33])
    def test_bad_width(self, width):
        with pytest.raises(ValueError):
            FixedPointTensor.from_float(np.zeros(2), width=width)


class TestFloatTensor:
    @given(float_arrays)
    def test_roundtrip_exact_at_float32(self, values):
        ft = FloatTensor.from_float(values)
        assert np.allclose(ft.to_float(), values.astype(np.float32))

    def test_exponent_flip_explodes_value(self):
        """Flipping a high exponent bit changes the value by orders of
        magnitude — the paper's 'value explosion' scenario."""
        ft = FloatTensor.from_float(np.array([1.0]))
        ft.flip_bits(np.array([30]))  # top exponent bit
        assert abs(ft.to_float()[0]) > 1e30

    def test_msb_order_targets_exponent_first(self):
        ft = FloatTensor.from_float(np.zeros(2))
        order = ft.msb_first_bit_order()
        assert set((order[:2] % 32).tolist()) == {30}
        assert len(set(order.tolist())) == ft.total_bits == 64

    def test_total_bits(self):
        ft = FloatTensor.from_float(np.zeros((2, 2)))
        assert ft.total_bits == 128

    def test_double_flip_restores(self):
        ft = FloatTensor.from_float(np.array([3.14]))
        snapshot = ft.raw.copy()
        ft.flip_bits(np.array([22]))
        ft.flip_bits(np.array([22]))
        assert (ft.raw == snapshot).all()

    def test_flip_out_of_range(self):
        ft = FloatTensor.from_float(np.zeros(1))
        with pytest.raises(IndexError):
            ft.flip_bits(np.array([32]))
