"""Representation-level robustness ordering tests (the paper's thesis).

These integration-grade tests pin the *reason* behind Table 3's ordering
at the representation layer, independent of any particular dataset
draw: value damage per flipped bit is bounded for binary hypervectors,
bounded-but-larger for fixed point, and unbounded for floats.
"""

import numpy as np
import pytest

from repro.baselines.quantization import FixedPointTensor, FloatTensor


def worst_single_bit_value_error(tensor) -> float:
    """Largest value change any single bit flip can cause."""
    base = tensor.to_float().ravel()
    worst = 0.0
    for bit in range(min(tensor.total_bits, 256)):
        t = tensor.copy()
        t.flip_bits(np.array([bit]))
        delta = np.abs(t.to_float().ravel() - base)
        delta = delta[np.isfinite(delta)]
        if delta.size:
            worst = max(worst, float(delta.max()))
        else:
            worst = float("inf")
    return worst


class TestDamageBounds:
    def test_fixed_point_damage_bounded_by_msb(self):
        rng = np.random.default_rng(0)
        fp = FixedPointTensor.from_float(rng.normal(size=8), width=8)
        worst = worst_single_bit_value_error(fp)
        assert worst <= 128 * fp.scale + 1e-9

    def test_float_damage_unbounded_in_practice(self):
        """One exponent flip changes a float by more than any fixed-point
        flip could — the 'value explosion' of Section 2."""
        rng = np.random.default_rng(1)
        values = rng.normal(size=8)
        fp = FixedPointTensor.from_float(values, width=8)
        ft = FloatTensor.from_float(values)
        assert worst_single_bit_value_error(ft) > (
            100 * worst_single_bit_value_error(fp)
        )

    def test_hdc_damage_per_bit_is_one_dimension(self):
        """Flipping an HDC model bit moves every class score by exactly
        one dimension's worth — the 'all bits equal' property."""
        from repro.core.model import HDCModel

        rng = np.random.default_rng(2)
        hv = rng.integers(0, 2, (3, 200), dtype=np.uint8)
        model = HDCModel(class_hv=hv, bits=1)
        query = rng.integers(0, 2, 200, dtype=np.uint8)
        base = model.similarities(query[None, :])[0]
        for bit in rng.choice(model.total_bits, size=32, replace=False):
            damaged = model.copy()
            flat = damaged.class_hv.reshape(-1)
            flat[bit] ^= 1
            sims = damaged.similarities(query[None, :])[0]
            assert np.abs(sims - base).sum() == pytest.approx(1.0)
