"""Tests for the linear SVM baseline."""

import numpy as np
import pytest

from repro.baselines.svm import LinearSVM
from repro.datasets.synthetic import make_prototype_classification


@pytest.fixture(scope="module")
def task():
    return make_prototype_classification(
        "toy", num_features=25, num_classes=3, num_train=300, num_test=150,
        boundary_fraction=0.2, boundary_depth=(0.25, 0.4), seed=10,
    )


@pytest.fixture(scope="module")
def fitted(task):
    return LinearSVM(task.num_features, task.num_classes, epochs=10,
                     seed=0).fit(task.train_x, task.train_y)


class TestTraining:
    def test_learns(self, task, fitted):
        assert fitted.score(task.test_x, task.test_y) > 0.85

    def test_deterministic(self, task):
        a = LinearSVM(task.num_features, task.num_classes, epochs=3,
                      seed=4).fit(task.train_x, task.train_y)
        b = LinearSVM(task.num_features, task.num_classes, epochs=3,
                      seed=4).fit(task.train_x, task.train_y)
        assert np.allclose(a.weights, b.weights)
        assert np.allclose(a.bias, b.bias)

    def test_sample_mismatch(self, task):
        clf = LinearSVM(task.num_features, task.num_classes)
        with pytest.raises(ValueError, match="sample count"):
            clf.fit(task.train_x, task.train_y[:-1])


class TestPrediction:
    def test_decision_shape(self, task, fitted):
        scores = fitted.decision_function(task.test_x[:7])
        assert scores.shape == (7, task.num_classes)

    def test_nonfinite_scores_sanitised(self, task, fitted):
        broken = fitted.clone()
        w = fitted.get_weights()
        w[0] = w[0].copy()
        w[0][0, 0] = np.inf
        broken.set_weights(w)
        preds = broken.predict(task.test_x[:5])
        assert preds.shape == (5,)


class TestWeightedModelInterface:
    def test_roundtrip(self, task, fitted):
        clone = fitted.clone()
        clone.set_weights(fitted.get_weights())
        assert (clone.predict(task.test_x) == fitted.predict(task.test_x)).all()

    def test_get_weights_is_copy(self, fitted):
        w = fitted.get_weights()
        w[0][:] = 0.0
        assert fitted.weights.any()

    def test_set_weights_validated(self, fitted):
        with pytest.raises(ValueError, match="expected 2"):
            fitted.clone().set_weights([np.zeros(3)])
        with pytest.raises(ValueError, match="shape"):
            fitted.clone().set_weights([np.zeros((1, 1)), np.zeros(1)])


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_features=0, num_classes=2),
            dict(num_features=3, num_classes=1),
            dict(num_features=3, num_classes=2, reg=0.0),
            dict(num_features=3, num_classes=2, epochs=-1),
        ],
    )
    def test_bad_construction(self, kwargs):
        with pytest.raises(ValueError):
            LinearSVM(**kwargs)
