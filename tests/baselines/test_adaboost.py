"""Tests for the SAMME AdaBoost baseline."""

import numpy as np
import pytest

from repro.baselines.adaboost import AdaBoostClassifier, DecisionStump
from repro.datasets.synthetic import make_prototype_classification


@pytest.fixture(scope="module")
def task():
    return make_prototype_classification(
        "toy", num_features=20, num_classes=3, num_train=300, num_test=150,
        boundary_fraction=0.2, boundary_depth=(0.25, 0.4), seed=11,
    )


@pytest.fixture(scope="module")
def fitted(task):
    return AdaBoostClassifier(
        task.num_features, task.num_classes, num_stumps=40, seed=0
    ).fit(task.train_x, task.train_y)


class TestDecisionStump:
    def test_predict(self):
        stump = DecisionStump(feature=1, threshold=0.5, class_left=0,
                              class_right=2)
        x = np.array([[0.0, 0.3], [0.0, 0.7]])
        assert list(stump.predict(x)) == [0, 2]


class TestTraining:
    def test_learns(self, task, fitted):
        assert fitted.score(task.test_x, task.test_y) > 0.8

    def test_more_stumps_not_worse(self, task):
        small = AdaBoostClassifier(task.num_features, task.num_classes,
                                   num_stumps=3, seed=0).fit(
            task.train_x, task.train_y
        )
        assert fittedness(small, task) <= fittedness(
            AdaBoostClassifier(task.num_features, task.num_classes,
                               num_stumps=40, seed=0).fit(
                task.train_x, task.train_y
            ),
            task,
        ) + 0.05

    def test_alphas_positive(self, fitted):
        assert (fitted.alphas > 0).all()

    def test_stump_count_bounded(self, fitted):
        assert 1 <= len(fitted.stumps) <= 40
        assert fitted.alphas.shape[0] == len(fitted.stumps)

    def test_max_features_subsampling(self, task):
        clf = AdaBoostClassifier(task.num_features, task.num_classes,
                                 num_stumps=10, max_features=5, seed=0)
        clf.fit(task.train_x, task.train_y)
        assert clf.score(task.test_x, task.test_y) > 0.5

    def test_sample_mismatch(self, task):
        clf = AdaBoostClassifier(task.num_features, task.num_classes)
        with pytest.raises(ValueError, match="sample count"):
            clf.fit(task.train_x, task.train_y[:-1])


def fittedness(clf, task):
    return clf.score(task.test_x, task.test_y)


class TestPrediction:
    def test_unfitted_raises(self, task):
        clf = AdaBoostClassifier(task.num_features, task.num_classes)
        with pytest.raises(RuntimeError, match="not fitted"):
            clf.predict(task.test_x)

    def test_decision_shape(self, task, fitted):
        votes = fitted.decision_function(task.test_x[:5])
        assert votes.shape == (5, task.num_classes)


class TestWeightedModelInterface:
    def test_roundtrip(self, task, fitted):
        clone = fitted.clone()
        clone.set_weights(fitted.get_weights())
        assert (clone.predict(task.test_x) == fitted.predict(task.test_x)).all()

    def test_clone_keeps_structure(self, fitted):
        clone = fitted.clone()
        assert [s.feature for s in clone.stumps] == [
            s.feature for s in fitted.stumps
        ]
        # Deep copies: mutating the clone leaves the original alone.
        clone.stumps[0].threshold = -99.0
        assert fitted.stumps[0].threshold != -99.0

    def test_weights_are_thresholds_and_alphas(self, fitted):
        thresholds, alphas = fitted.get_weights()
        assert thresholds.shape[0] == len(fitted.stumps)
        assert alphas.shape[0] == len(fitted.stumps)

    def test_set_weights_validated(self, fitted):
        with pytest.raises(ValueError):
            fitted.clone().set_weights([np.zeros(1), np.zeros(1)])


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_features=0, num_classes=2),
            dict(num_features=3, num_classes=1),
            dict(num_features=3, num_classes=2, num_stumps=0),
        ],
    )
    def test_bad_construction(self, kwargs):
        with pytest.raises(ValueError):
            AdaBoostClassifier(**kwargs)
