"""Tests for the attackable quantised deployment wrapper."""

import numpy as np
import pytest

from repro.baselines.deploy import QuantizedDeployment
from repro.baselines.mlp import MLPClassifier
from repro.baselines.quantization import FixedPointTensor, FloatTensor
from repro.datasets.synthetic import make_prototype_classification


@pytest.fixture(scope="module")
def setup():
    task = make_prototype_classification(
        "toy", num_features=20, num_classes=3, num_train=250, num_test=120,
        boundary_fraction=0.2, boundary_depth=(0.25, 0.4), seed=12,
    )
    mlp = MLPClassifier(task.num_features, task.num_classes, hidden=(24,),
                        epochs=20, seed=0).fit(task.train_x, task.train_y)
    return task, mlp


class TestQuantizedDeployment:
    def test_quantisation_loss_small(self, setup):
        task, mlp = setup
        deployment = QuantizedDeployment(mlp, width=8)
        float_acc = mlp.score(task.test_x, task.test_y)
        fixed_acc = deployment.score(task.test_x, task.test_y)
        assert abs(float_acc - fixed_acc) < 0.05

    def test_tensor_types(self, setup):
        _, mlp = setup
        fixed = QuantizedDeployment(mlp, width=8)
        assert all(isinstance(t, FixedPointTensor) for t in fixed.tensors)
        fp32 = QuantizedDeployment(mlp, storage="float32")
        assert all(isinstance(t, FloatTensor) for t in fp32.tensors)
        assert fp32.width == 32

    def test_total_bits(self, setup):
        _, mlp = setup
        deployment = QuantizedDeployment(mlp, width=8)
        params = sum(w.size for w in mlp.get_weights())
        assert deployment.total_bits == params * 8

    def test_float32_storage_faithful(self, setup):
        task, mlp = setup
        deployment = QuantizedDeployment(mlp, storage="float32")
        assert (
            deployment.predict(task.test_x) == mlp.predict(task.test_x)
        ).mean() > 0.99

    def test_attacked_returns_new_deployment(self, setup):
        task, mlp = setup
        deployment = QuantizedDeployment(mlp, width=8)
        attacked = deployment.attacked(0.1, "random", np.random.default_rng(0))
        assert attacked is not deployment
        # Original bits untouched.
        clean_again = deployment.score(task.test_x, task.test_y)
        assert clean_again == deployment.score(task.test_x, task.test_y)
        changed = sum(
            int(np.count_nonzero(a.raw != b.raw))
            for a, b in zip(deployment.tensors, attacked.tensors)
        )
        assert changed > 0

    def test_zero_rate_attack_is_identity(self, setup):
        task, mlp = setup
        deployment = QuantizedDeployment(mlp, width=8)
        attacked = deployment.attacked(0.0, "random", np.random.default_rng(0))
        assert (
            attacked.predict(task.test_x) == deployment.predict(task.test_x)
        ).all()

    def test_targeted_hurts_more_than_random(self, setup):
        task, mlp = setup
        deployment = QuantizedDeployment(mlp, width=8)
        clean = deployment.score(task.test_x, task.test_y)
        rand = np.mean([
            deployment.attacked(0.06, "random", np.random.default_rng(s))
            .score(task.test_x, task.test_y)
            for s in range(5)
        ])
        targ = np.mean([
            deployment.attacked(0.06, "targeted", np.random.default_rng(s))
            .score(task.test_x, task.test_y)
            for s in range(5)
        ])
        assert clean - targ >= clean - rand - 0.02

    def test_bad_storage(self, setup):
        _, mlp = setup
        with pytest.raises(ValueError, match="storage"):
            QuantizedDeployment(mlp, storage="int4")
