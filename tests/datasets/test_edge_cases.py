"""Edge-case coverage for the dataset substrate."""

import numpy as np

from repro.datasets.synthetic import make_prototype_classification


class TestPrototypeEdges:
    def test_two_class_task(self):
        d = make_prototype_classification(
            "bin", num_features=16, num_classes=2, num_train=80, num_test=40,
            seed=20,
        )
        assert d.num_classes == 2
        assert set(np.unique(d.train_y)) == {0, 1}

    def test_all_boundary_samples(self):
        d = make_prototype_classification(
            "hard", num_features=16, num_classes=3, num_train=90, num_test=30,
            boundary_fraction=1.0, boundary_depth=(0.4, 0.45), seed=21,
        )
        assert d.train_x.shape == (90, 16)

    def test_zero_noise_core_samples_identical(self):
        d = make_prototype_classification(
            "clean", num_features=10, num_classes=2, num_train=40,
            num_test=10, boundary_fraction=0.0, within_noise=0.0, seed=22,
        )
        x0 = d.train_x[d.train_y == 0]
        assert np.allclose(x0, x0[0])

    def test_degenerate_boundary_depth(self):
        """lo == hi is allowed (a fixed interpolation depth)."""
        d = make_prototype_classification(
            "fixed", num_features=8, num_classes=2, num_train=30,
            num_test=10, boundary_depth=(0.4, 0.4), seed=23,
        )
        assert d.num_train == 30

    def test_minimal_sizes(self):
        d = make_prototype_classification(
            "tiny", num_features=1, num_classes=2, num_train=2, num_test=1,
            seed=24,
        )
        assert d.num_features == 1
        assert d.num_test == 1
