"""Tests for the Table 2 dataset registry."""

import pytest

from repro.datasets.registry import DATASET_NAMES, PROFILES, load, load_all


class TestProfiles:
    def test_six_datasets(self):
        assert len(PROFILES) == 6
        assert set(DATASET_NAMES) == {
            "mnist", "ucihar", "isolet", "face", "pamap", "pecan",
        }

    def test_table2_shapes(self):
        """Feature/class counts match the paper's Table 2 exactly."""
        expected = {
            "mnist": (784, 10, 60_000, 10_000),
            "ucihar": (561, 12, 6_213, 1_554),
            "isolet": (617, 26, 6_238, 1_559),
            "face": (608, 2, 522_441, 2_494),
            "pamap": (75, 5, 611_142, 101_582),
            "pecan": (312, 3, 22_290, 5_574),
        }
        for name, (n, k, train, test) in expected.items():
            p = PROFILES[name]
            assert (p.num_features, p.num_classes) == (n, k), name
            assert (p.full_train, p.full_test) == (train, test), name


class TestLoad:
    def test_caps_respected(self):
        d = load("ucihar", max_train=100, max_test=40)
        assert d.num_train == 100
        assert d.num_test == 40

    def test_full_size_capped_by_published(self):
        d = load("ucihar", max_train=10**9, max_test=10**9)
        assert d.num_train == 6_213
        assert d.num_test == 1_554

    def test_shape_matches_profile(self):
        d = load("pamap", max_train=60, max_test=20)
        assert d.num_features == 75
        assert d.num_classes == 5

    def test_case_insensitive(self):
        assert load("MNIST", max_train=50, max_test=20).name == "mnist"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load("cifar")

    def test_load_all(self):
        datasets = load_all(max_train=50, max_test=20)
        assert [d.name for d in datasets] == list(DATASET_NAMES)

    def test_deterministic(self):
        a = load("pecan", max_train=50, max_test=20)
        b = load("pecan", max_train=50, max_test=20)
        assert (a.train_x == b.train_x).all()
