"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    Dataset,
    make_classification,
    make_prototype_classification,
)


class TestDataset:
    def test_properties(self):
        d = make_prototype_classification(
            "t", num_features=8, num_classes=3, num_train=30, num_test=10,
            seed=0,
        )
        assert d.num_features == 8
        assert d.num_classes == 3
        assert d.num_train == 30
        assert d.num_test == 10

    def test_validation(self):
        x = np.zeros((4, 3))
        y = np.zeros(4, dtype=np.int64)
        with pytest.raises(ValueError, match="sample count"):
            Dataset("bad", x, y[:2], x, y)
        with pytest.raises(ValueError, match="width"):
            Dataset("bad", x, y, np.zeros((4, 2)), y)
        with pytest.raises(ValueError, match="2-D"):
            Dataset("bad", np.zeros(4), y, x, y)


class TestPrototypeGenerator:
    def test_values_in_unit_interval(self):
        d = make_prototype_classification(
            "t", num_features=20, num_classes=4, num_train=100, num_test=50,
            seed=1,
        )
        for arr in (d.train_x, d.test_x):
            assert arr.min() >= 0.0 and arr.max() <= 1.0

    def test_all_classes_present(self):
        d = make_prototype_classification(
            "t", num_features=10, num_classes=5, num_train=200, num_test=100,
            seed=2,
        )
        assert set(np.unique(d.train_y)) == set(range(5))

    def test_seeded_determinism(self):
        kwargs = dict(num_features=12, num_classes=3, num_train=50,
                      num_test=20, seed=3)
        a = make_prototype_classification("t", **kwargs)
        b = make_prototype_classification("t", **kwargs)
        assert np.allclose(a.train_x, b.train_x)
        assert (a.test_y == b.test_y).all()

    def test_different_seeds_differ(self):
        kwargs = dict(num_features=12, num_classes=3, num_train=50,
                      num_test=20)
        a = make_prototype_classification("t", seed=1, **kwargs)
        b = make_prototype_classification("t", seed=2, **kwargs)
        assert not np.allclose(a.train_x, b.train_x)

    def test_core_samples_tight(self):
        """With no boundary mixing and tiny noise, same-class samples are
        nearly identical — the compactness recovery relies on."""
        d = make_prototype_classification(
            "t", num_features=30, num_classes=3, num_train=120, num_test=30,
            boundary_fraction=0.0, within_noise=0.005, seed=4,
        )
        x0 = d.train_x[d.train_y == 0]
        spread = x0.std(axis=0).mean()
        assert spread < 0.02

    def test_boundary_samples_increase_difficulty(self):
        """Deep boundary mixing lowers nearest-prototype separability."""
        def spread_ratio(bfrac):
            d = make_prototype_classification(
                "t", num_features=30, num_classes=3, num_train=200,
                num_test=30, boundary_fraction=bfrac,
                boundary_depth=(0.4, 0.5), within_noise=0.005, seed=5,
            )
            # within-class variance as a proxy for mixing depth
            return np.mean([
                d.train_x[d.train_y == c].std(axis=0).mean()
                for c in range(3)
            ])

        assert spread_ratio(0.6) > spread_ratio(0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_features=0, num_classes=2, num_train=10, num_test=5),
            dict(num_features=4, num_classes=1, num_train=10, num_test=5),
            dict(num_features=4, num_classes=2, num_train=1, num_test=5),
            dict(num_features=4, num_classes=2, num_train=10, num_test=5,
                 prototype_spread=0.0),
            dict(num_features=4, num_classes=2, num_train=10, num_test=5,
                 within_noise=-0.1),
            dict(num_features=4, num_classes=2, num_train=10, num_test=5,
                 boundary_fraction=1.5),
            dict(num_features=4, num_classes=2, num_train=10, num_test=5,
                 boundary_depth=(0.6, 0.4)),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            make_prototype_classification("t", seed=0, **kwargs)


class TestGaussianGenerator:
    def test_basic_generation(self):
        d = make_classification(
            "g", num_features=16, num_classes=3, num_train=90, num_test=30,
            seed=6,
        )
        assert d.train_x.shape == (90, 16)
        assert d.train_x.min() >= 0.0 and d.train_x.max() <= 1.0

    def test_separation_controls_difficulty(self):
        """Wider separation should make nearest-centroid easier."""
        def centroid_accuracy(sep):
            d = make_classification(
                "g", num_features=16, num_classes=3, num_train=300,
                num_test=150, separation=sep, seed=7,
            )
            centroids = np.stack([
                d.train_x[d.train_y == c].mean(axis=0) for c in range(3)
            ])
            dists = ((d.test_x[:, None, :] - centroids[None]) ** 2).sum(-1)
            return float(np.mean(np.argmin(dists, axis=1) == d.test_y))

        assert centroid_accuracy(3.0) > centroid_accuracy(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_classification("g", num_features=4, num_classes=2,
                                num_train=10, num_test=5, nonlinearity=2.0)
