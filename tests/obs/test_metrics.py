"""Tests for the metrics registry and its no-op default."""

import numpy as np
import pytest

from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier
from repro.core.recovery import RecoveryConfig, RobustHDRecovery
from repro.datasets.synthetic import make_prototype_classification
from repro.faults.api import attack
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    NullMetrics,
    current,
    disable_metrics,
    enable_metrics,
    use_metrics,
)


@pytest.fixture(autouse=True)
def _restore_registry():
    yield
    disable_metrics()


class TestHistogram:
    def test_aggregates(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["sum"] == 6.0
        assert s["min"] == 1.0
        assert s["max"] == 3.0
        assert s["mean"] == 2.0

    def test_percentile(self):
        h = Histogram()
        for v in range(101):
            h.observe(float(v))
        assert h.percentile(0) == 0.0
        assert h.percentile(50) == 50.0
        assert h.percentile(100) == 100.0

    def test_empty(self):
        h = Histogram()
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0
        # Empty extremes are null, not +/-inf: snapshots must stay
        # strict-JSON-parseable.
        assert h.summary()["min"] is None
        assert h.summary()["max"] is None

    def test_sample_cap_keeps_exact_totals(self):
        h = Histogram()
        for _ in range(5000):
            h.observe(1.0)
        assert h.count == 5000
        assert h.total == 5000.0
        assert len(h.samples) <= 4096

    def test_reservoir_keeps_late_samples(self):
        """Percentiles reflect the whole stream, not the first 4096.

        The old behaviour kept only the first 4096 observations, so a
        distribution shift after warm-up was invisible to percentiles.
        """
        h = Histogram()
        for _ in range(4096):
            h.observe(0.0)
        for _ in range(40_000):
            h.observe(100.0)
        assert len(h.samples) == 4096
        late = sum(1 for v in h.samples if v == 100.0)
        # ~90% of the stream is late values; the reservoir should hold
        # roughly that share (leave wide margin, the hash is fixed).
        assert late > 2048
        assert h.percentile(50) == 100.0

    def test_reservoir_is_deterministic(self):
        def fill():
            h = Histogram()
            for v in range(10_000):
                h.observe(float(v))
            return list(h.samples)

        assert fill() == fill()


class TestRegistry:
    def test_counters(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 4)
        assert m.counter("a") == 5
        assert m.counter("missing") == 0

    def test_gauge_keeps_latest(self):
        m = MetricsRegistry()
        m.gauge("g", 1.0)
        m.gauge("g", 2.5)
        assert m.snapshot()["gauges"]["g"] == 2.5

    def test_timer_records_duration(self):
        m = MetricsRegistry()
        with m.timer("t"):
            pass
        s = m.snapshot()["histograms"]["t"]
        assert s["count"] == 1
        assert s["sum"] >= 0.0

    def test_render_and_reset(self):
        m = MetricsRegistry()
        m.inc("c", 2)
        m.gauge("g", 1.0)
        m.observe("h", 0.5)
        text = m.render()
        assert "Counters" in text and "Gauges" in text and "Histograms" in text
        m.reset()
        assert m.render() == "(no metrics recorded)"


class TestInstallation:
    def test_default_is_noop(self):
        assert isinstance(current(), NullMetrics)
        assert not current().enabled

    def test_null_records_nothing(self):
        m = NullMetrics()
        m.inc("a")
        m.gauge("b", 1.0)
        m.observe("c", 2.0)
        with m.timer("d"):
            pass
        snap = m.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_enable_disable(self):
        registry = enable_metrics()
        assert current() is registry
        assert registry.enabled
        disable_metrics()
        assert isinstance(current(), NullMetrics)

    def test_use_metrics_scopes(self):
        registry = MetricsRegistry()
        before = current()
        with use_metrics(registry) as m:
            assert m is registry
            assert current() is registry
        assert current() is before


@pytest.fixture(scope="module")
def fitted():
    task = make_prototype_classification(
        "toy", num_features=40, num_classes=4, num_train=200, num_test=160,
        boundary_fraction=0.4, boundary_depth=(0.25, 0.45), seed=11,
    )
    encoder = Encoder(num_features=40, dim=1_000, seed=5)
    clf = HDCClassifier(encoder, num_classes=4, epochs=0).fit(
        task.train_x, task.train_y
    )
    return clf.model, encoder.encode_batch(task.test_x)


class TestBitIdentical:
    """Metrics on vs off must not change a single bit of any seeded run."""

    def _run(self, model, queries):
        attacked, _ = attack(model, 0.10, "random", np.random.default_rng(2))
        recovery = RobustHDRecovery(
            attacked, RecoveryConfig(num_chunks=10), seed=3
        )
        preds = recovery.process(queries)
        return preds, attacked.class_hv.copy(), recovery.stats

    def test_recovery_run_identical(self, fitted):
        model, queries = fitted
        disable_metrics()
        preds_off, hv_off, stats_off = self._run(model, queries)
        with use_metrics(MetricsRegistry()) as registry:
            preds_on, hv_on, stats_on = self._run(model, queries)
        assert (preds_on == preds_off).all()
        assert (hv_on == hv_off).all()
        assert stats_on == stats_off
        # ... and collection actually happened on the instrumented run.
        assert registry.counter("recovery.queries") == queries.shape[0]
        assert registry.counter("model.queries_served") > 0

    def test_instrumented_counts(self, fitted):
        model, queries = fitted
        with use_metrics(MetricsRegistry()) as registry:
            model.predict(queries)
        assert registry.counter("model.queries_served") == queries.shape[0]
        assert (
            registry.counter("model.similarity_batches_packed")
            + registry.counter("model.similarity_batches_float")
            == 1
        )

    def test_injection_counts(self, fitted):
        model, _ = fitted
        with use_metrics(MetricsRegistry()) as registry:
            _, mask = attack(model, 0.05, "random", np.random.default_rng(0))
        assert registry.counter("faults.injections") == 1
        assert registry.counter("faults.bits_injected") == mask.num_faults
