"""Unit tests for the cross-process telemetry slab machinery.

Everything here runs on plain in-process uint64 arrays — the slab
layout, writer, reader, aggregator, flight recorder and correlator are
buffer-agnostic by design.  The serve-integration tests (real shared
memory, real worker processes, SIGKILL post-mortems) live in
``tests/serve/test_fleet_telemetry.py``.
"""

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    COUNTER_FIELDS,
    EV_ADOPT,
    EV_BATCH_END,
    EV_BATCH_START,
    EV_DEADLINE_MISS,
    HIST_BINS,
    FlightRecorder,
    TelemetryAggregator,
    TelemetrySlabReader,
    TelemetryWriter,
    bucket_index,
    bucket_percentile,
    correlate,
    render_contention_table,
    slab_words,
)
from repro.obs.trace import ServeBatchEvent


def make_slab(flight_slots=8):
    return np.zeros(slab_words(flight_slots), dtype=np.uint64)


def make_pair(flight_slots=8, worker_id=0, **writer_kw):
    slab = make_slab(flight_slots)
    writer = TelemetryWriter(slab, worker_id, **writer_kw)
    return writer, TelemetrySlabReader(slab)


def record(writer, *, requests=2, queries=10, expired=0, duration_ns=1000,
           adopted=False, degraded=False, now_ns=123):
    writer.record_batch(
        requests=requests, queries=queries, expired=expired,
        duration_ns=duration_ns, adopted=adopted, degraded=degraded,
        now_ns=now_ns,
    )


class TestBuckets:
    def test_bucket_index_is_bit_length(self):
        assert bucket_index(0) == 0
        assert bucket_index(1) == 1
        assert bucket_index(2) == 2
        assert bucket_index(3) == 2
        assert bucket_index(4) == 3
        assert bucket_index(2**62) == 63
        assert bucket_index(2**63) == 63  # clamped to the last bin

    def test_percentile_of_point_mass(self):
        bins = np.zeros(HIST_BINS, dtype=np.int64)
        bins[bucket_index(1000)] = 50
        value = bucket_percentile(bins, 50)
        # Representative value sits inside the bucket's [512, 1024) range.
        assert 512 <= value < 1024

    def test_percentile_orders_buckets(self):
        bins = np.zeros(HIST_BINS, dtype=np.int64)
        bins[bucket_index(10)] = 90
        bins[bucket_index(100_000)] = 10
        assert bucket_percentile(bins, 50) < bucket_percentile(bins, 99)

    def test_percentile_empty_is_zero(self):
        assert bucket_percentile(np.zeros(HIST_BINS, dtype=np.int64), 95) == 0.0

    def test_percentile_rejects_bad_q(self):
        with pytest.raises(ValueError):
            bucket_percentile(np.zeros(HIST_BINS, dtype=np.int64), 101)


class TestSlabGeometry:
    def test_slab_words_round_trips_slots(self):
        slab = make_slab(flight_slots=16)
        reader = TelemetrySlabReader(slab)
        assert reader._slots == 16

    def test_rejects_non_slab_array(self):
        with pytest.raises(ValueError):
            TelemetrySlabReader(np.zeros(5, dtype=np.uint64))

    def test_writer_rejects_wrong_dtype(self):
        with pytest.raises(ValueError):
            TelemetryWriter(np.zeros(slab_words(8), dtype=np.int64), 0)

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            slab_words(0)


class TestWriterReader:
    def test_round_trip_counters_and_header(self):
        writer, reader = make_pair(worker_id=3, pid=4242, started_ns=111)
        record(writer, requests=2, queries=10, now_ns=999)
        record(writer, requests=1, queries=5, expired=1, adopted=True,
               degraded=True, now_ns=1000)
        snap = reader.scrape()
        assert not snap.torn
        assert snap.worker_id == 3
        assert snap.pid == 4242
        assert snap.started_ns == 111
        assert snap.last_batch_ns == 1000
        assert snap.counters == {
            "batches": 2, "requests": 3, "queries": 15, "expired": 1,
            "adoptions": 1, "degraded_batches": 1,
        }

    def test_histogram_stats(self):
        writer, reader = make_pair()
        for duration in (100, 200, 400):
            record(writer, queries=7, duration_ns=duration)
        snap = reader.scrape()
        h = snap.histograms["batch_duration_ns"]
        assert h["count"] == 3
        assert h["sum"] == 700
        assert h["min"] == 100
        assert h["max"] == 400
        assert snap.histogram_bins("batch_duration_ns").sum() == 3
        assert snap.histograms["batch_queries"]["sum"] == 21

    def test_empty_slab_scrapes_cleanly(self):
        """A scrape racing worker startup must not invent extremes."""
        reader = TelemetrySlabReader(make_slab())
        snap = reader.scrape()
        assert snap.counters["batches"] == 0
        assert snap.histograms["batch_duration_ns"]["min"] is None
        assert snap.histograms["batch_duration_ns"]["max"] is None

    def test_seqlock_torn_fallback(self):
        """A slab frozen mid-update (seq odd) still scrapes, flagged torn."""
        writer, reader = make_pair()
        record(writer)
        writer._a[0] += np.uint64(1)  # SIGKILL mid-update: seq stuck odd
        snap = reader.scrape(max_retries=10)
        assert snap.torn
        assert snap.counters["batches"] == 1

    def test_freeze_detaches_from_buffer(self):
        writer, reader = make_pair()
        record(writer)
        reader.freeze()
        record(writer)  # lands in the live slab only
        assert reader.scrape().counters["batches"] == 1


class TestFlightRing:
    def test_events_decode_in_order(self):
        writer, reader = make_pair(flight_slots=8, worker_id=2)
        writer.record_event(EV_BATCH_START, 100, 0, 4)
        writer.record_event(EV_ADOPT, 150, 3, 9, 5000)
        writer.record_event(EV_BATCH_END, 200, 0, 16, 100_000)
        events = reader.events()
        assert [e.name for e in events] == [
            "batch_start", "generation_adopt", "batch_end",
        ]
        assert [e.sequence for e in events] == [0, 1, 2]
        assert all(e.worker_id == 2 for e in events)
        adopt = events[1]
        assert adopt.t_ns == 150
        assert adopt.args == (3, 9, 5000, 0)
        assert adopt.to_dict()["name"] == "generation_adopt"

    def test_ring_wraps_keeping_newest(self):
        writer, reader = make_pair(flight_slots=4)
        for i in range(11):
            writer.record_event(EV_DEADLINE_MISS, 1000 + i, i)
        events = reader.events()
        assert len(events) == 4
        assert [e.args[0] for e in events] == [7, 8, 9, 10]
        assert [e.sequence for e in events] == [7, 8, 9, 10]

    def test_empty_ring(self):
        _, reader = make_pair()
        assert reader.events() == []


class TestAggregator:
    def make_fleet(self):
        w0, r0 = make_pair(worker_id=0)
        w1, r1 = make_pair(worker_id=1)
        record(w0, requests=2, queries=10, duration_ns=100)
        record(w0, requests=1, queries=5, duration_ns=200, adopted=True)
        record(w1, requests=4, queries=20, expired=1, duration_ns=100_000)
        return TelemetryAggregator({0: r0, 1: r1})

    def test_merges_counters_and_bins(self):
        agg = self.make_fleet()
        merged = agg.scrape()
        assert merged["counters"]["batches"] == 3
        assert merged["counters"]["requests"] == 7
        assert merged["counters"]["queries"] == 35
        assert merged["counters"]["expired"] == 1
        assert merged["counters"]["adoptions"] == 1
        duration = merged["histograms"]["batch_duration_ns"]
        assert duration["count"] == 3
        assert duration["min"] == 100
        assert duration["max"] == 100_000
        assert duration["bins"].sum() == 3
        assert set(merged["workers"]) == {0, 1}

    def test_cross_worker_percentiles(self):
        agg = self.make_fleet()
        ps = agg.percentiles("batch_duration_ns", (50.0, 99.0))
        # Median sits with the two fast batches, the tail with the slow one.
        assert ps[50.0] < 1000
        assert ps[99.0] > 50_000

    def test_scrape_into_registry_deltas(self):
        agg = self.make_fleet()
        registry = MetricsRegistry()
        agg.scrape_into(registry)
        assert registry.counter("serve.fleet.batches") == 3
        assert registry.counter("serve.fleet.queries") == 35
        assert registry.snapshot()["gauges"][
            "serve.fleet.workers_reporting"
        ] == 2
        assert registry.snapshot()["gauges"][
            "serve.fleet.batch_duration_p99"
        ] > 0
        # Nothing new happened: a re-scrape must not double-count.
        agg.scrape_into(registry)
        assert registry.counter("serve.fleet.batches") == 3
        assert registry.counter("serve.fleet.queries") == 35

    def test_all_counter_fields_exported(self):
        agg = self.make_fleet()
        registry = MetricsRegistry()
        agg.scrape_into(registry)
        merged = agg.scrape()
        for name in COUNTER_FIELDS:
            if merged["counters"][name]:
                assert registry.counter(f"serve.fleet.{name}") == (
                    merged["counters"][name]
                )


class TestFlightRecorder:
    def test_postmortem_and_merge(self):
        w0, r0 = make_pair(worker_id=0)
        w1, r1 = make_pair(worker_id=1)
        w0.record_event(EV_BATCH_START, 100, 0)
        w1.record_event(EV_BATCH_START, 50, 0)
        w0.record_event(EV_BATCH_END, 300, 0)
        recorder = FlightRecorder({0: r0, 1: r1})
        assert [e.name for e in recorder.postmortem(0)] == [
            "batch_start", "batch_end",
        ]
        merged = recorder.all_events()
        assert [(e.worker_id, e.t_ns) for e in merged] == [
            (1, 50), (0, 100), (0, 300),
        ]
        with pytest.raises(KeyError):
            recorder.postmortem(9)

    def test_render(self):
        w0, r0 = make_pair(worker_id=0)
        w0.record_event(EV_BATCH_START, 100, 0, 4)
        recorder = FlightRecorder({0: r0})
        text = recorder.render(0)
        assert "Flight recorder: worker 0" in text
        assert "batch_start" in text
        _, r1 = make_pair(worker_id=1)
        assert "no flight events" in FlightRecorder({1: r1}).render(1)


def serve_event(generation, trace_id, duration_s=0.001, **overrides):
    base = dict(
        worker_id=0, batch_index=0, requests=2, queries=8, expired=0,
        generation=generation, model_version=generation, adopted=False,
        adoption_lag_s=0.0, staleness_s=0.0, degraded=False,
        queue_depth=0, duration_s=duration_s, trace_id=trace_id,
    )
    base.update(overrides)
    return ServeBatchEvent(**base)


class TestCorrelate:
    def test_joins_generations_to_publishes(self):
        events = [
            serve_event(1, 0), serve_event(1, 3),
            serve_event(2, 7, degraded=True, duration_s=0.1),
        ]
        publishes = [
            {"generation": 1, "model_version": 1, "trace_id": None},
            {"generation": 2, "model_version": 5, "trace_id": 6},
        ]
        rows = correlate(events, publishes)
        assert [row["generation"] for row in rows] == [1, 2]
        gen1, gen2 = rows
        assert gen1["batches"] == 2
        assert gen1["queries"] == 16
        assert gen1["trace_id_min"] == 0
        assert gen1["trace_id_max"] == 3
        assert gen1["published_after_trace"] is None
        assert gen2["published_after_trace"] == 6
        assert gen2["model_version"] == 5
        assert gen2["degraded_batches"] == 1
        assert gen2["max_batch_s"] == pytest.approx(0.1)

    def test_accepts_publish_log_attribute(self):
        class FakeRecovery:
            publish_log = [
                {"generation": 1, "model_version": 2, "trace_id": 4},
            ]

        rows = correlate([serve_event(1, 5)], FakeRecovery())
        assert rows[0]["published_after_trace"] == 4

    def test_no_publish_source(self):
        rows = correlate([serve_event(3, 2)])
        assert rows[0]["published_after_trace"] is None
        assert rows[0]["batches"] == 1

    def test_pre_trace_id_events_span_none(self):
        rows = correlate([serve_event(1, -1)])
        assert rows[0]["trace_id_min"] is None
        assert rows[0]["trace_id_max"] is None

    def test_render(self):
        rows = correlate(
            [serve_event(1, 0)],
            [{"generation": 1, "model_version": 1, "trace_id": 0}],
        )
        text = render_contention_table(rows)
        assert "Recovery-vs-traffic contention" in text
        assert render_contention_table([]) == "(no serve batches to correlate)"
