"""Tests for the structured recovery trace."""

import json

import numpy as np
import pytest

from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier
from repro.core.recovery import (
    RecoveryConfig,
    RecoveryStats,
    RobustHDRecovery,
    recover_block,
)
from repro.datasets.synthetic import make_prototype_classification
from repro.faults.api import attack
from repro.obs.trace import (
    RecoveryBlockEvent,
    RecoveryTrace,
    ServeBatchEvent,
    ServeTrace,
)


def make_event(block_index=0, **overrides):
    base = dict(
        block_index=block_index,
        queries=4,
        trusted=2,
        confidences=(0.9, 0.3, 0.95, 0.1),
        trusted_per_class=(1, 1),
        num_chunks=2,
        chunk_flags=((1, 0), (0, 1)),
        chunk_repair_bits=((3, 0), (0, 5)),
        bits_substituted=8,
        model_version_before=7,
        model_version_after=9,
    )
    base.update(overrides)
    return RecoveryBlockEvent(**base)


class TestEvent:
    def test_derived_properties(self):
        e = make_event()
        assert e.num_classes == 2
        assert e.chunks_flagged == 2
        assert e.model_writes == 2

    def test_confidence_summary(self):
        e = make_event()
        s = e.confidence_summary()
        assert s["min"] == pytest.approx(0.1)
        assert s["max"] == pytest.approx(0.95)

    def test_dict_round_trip(self):
        e = make_event()
        assert RecoveryBlockEvent.from_dict(e.to_dict()) == e


class TestTrace:
    def test_aggregates(self):
        trace = RecoveryTrace()
        trace.record(make_event(0))
        trace.record(make_event(1, bits_substituted=2,
                                chunk_repair_bits=((2, 0), (0, 0))))
        assert len(trace) == 2
        assert trace.queries_seen == 8
        assert trace.queries_trusted == 4
        assert trace.chunks_checked == 8
        assert trace.chunks_flagged == 4
        assert trace.bits_substituted == 10
        assert trace.last.block_index == 1

    def test_confidence_trace_concatenates(self):
        trace = RecoveryTrace()
        trace.record(make_event(0, confidences=(0.1, 0.2)))
        trace.record(make_event(1, confidences=(0.3,)))
        assert trace.confidence_trace() == [0.1, 0.2, 0.3]

    def test_grids(self):
        trace = RecoveryTrace()
        trace.record(make_event(0))
        trace.record(make_event(1))
        assert (trace.flag_counts() == [[2, 0], [0, 2]]).all()
        assert (trace.repair_bit_counts() == [[6, 0], [0, 10]]).all()
        assert (trace.flagged_chunks() == [[True, False], [False, True]]).all()

    def test_jsonl_round_trip_exact(self, tmp_path):
        trace = RecoveryTrace()
        trace.record(make_event(0, confidences=(0.1 + 0.2, 1 / 3)))
        trace.record(make_event(1))
        path = trace.write_jsonl(tmp_path / "trace.jsonl")
        back = RecoveryTrace.read_jsonl(path)
        assert back.events == trace.events  # floats round-trip exactly

    def test_empty_jsonl(self, tmp_path):
        path = RecoveryTrace().write_jsonl(tmp_path / "empty.jsonl")
        assert RecoveryTrace.read_jsonl(path).events == []

    def test_summary_table_renders(self):
        trace = RecoveryTrace()
        trace.record(make_event(0))
        text = trace.summary_table()
        assert "Recovery trace" in text
        assert "total" in text


def make_serve_event(**overrides):
    base = dict(
        worker_id=1,
        batch_index=3,
        requests=4,
        queries=17,
        expired=1,
        generation=2,
        model_version=9,
        adopted=True,
        adoption_lag_s=0.25,
        staleness_s=0.5,
        degraded=False,
        queue_depth=6,
        duration_s=0.001,
        trace_id=42,
    )
    base.update(overrides)
    return ServeBatchEvent(**base)


class TestServeBatchEventSerde:
    def test_dict_round_trip_keeps_trace_id(self):
        e = make_serve_event(trace_id=123)
        back = ServeBatchEvent.from_dict(e.to_dict())
        assert back == e
        assert back.trace_id == 123

    def test_jsonl_round_trip_with_trace_id(self, tmp_path):
        trace = ServeTrace()
        trace.record(make_serve_event(batch_index=0, trace_id=0))
        trace.record(make_serve_event(batch_index=1, trace_id=7))
        path = trace.write_jsonl(tmp_path / "serve.jsonl")
        back = ServeTrace.read_jsonl(path)
        assert back.events == trace.events
        assert [e.trace_id for e in back] == [0, 7]

    def test_pre_trace_id_jsonl_decodes_with_sentinel(self):
        """Records written before trace correlation still decode."""
        legacy = make_serve_event().to_dict()
        del legacy["trace_id"]
        line = json.dumps(legacy, separators=(",", ":"))
        back = ServeTrace.from_jsonl(line)
        assert len(back) == 1
        assert back.events[0].trace_id == -1
        assert back.events[0].queries == 17


@pytest.fixture(scope="module")
def fitted():
    task = make_prototype_classification(
        "toy", num_features=40, num_classes=4, num_train=200, num_test=160,
        boundary_fraction=0.4, boundary_depth=(0.25, 0.45), seed=11,
    )
    encoder = Encoder(num_features=40, dim=1_000, seed=5)
    clf = HDCClassifier(encoder, num_classes=4, epochs=0).fit(
        task.train_x, task.train_y
    )
    return clf.model, encoder.encode_batch(task.test_x)


class TestLiveTracing:
    def test_recovery_emits_one_event_per_block(self, fitted):
        model, queries = fitted
        attacked, _ = attack(model, 0.10, "random", np.random.default_rng(2))
        recovery = RobustHDRecovery(
            attacked, RecoveryConfig(num_chunks=10), seed=3, block_size=50
        )
        recovery.process(queries)
        expected_blocks = -(-queries.shape[0] // 50)
        assert len(recovery.trace) == expected_blocks
        assert recovery.last_trace is recovery.trace.events[-1]
        assert [e.block_index for e in recovery.trace] == list(
            range(expected_blocks)
        )

    def test_stats_derived_from_trace(self, fitted):
        """The wrapper's stats property reproduces the legacy inline stats."""
        model, queries = fitted
        config = RecoveryConfig(num_chunks=10)

        attacked, _ = attack(model, 0.10, "random", np.random.default_rng(2))
        recovery = RobustHDRecovery(attacked, config, seed=3, block_size=64)
        recovery.process(queries)

        reference, _ = attack(model, 0.10, "random", np.random.default_rng(2))
        legacy = RecoveryStats()
        rng = np.random.default_rng(3)
        for lo in range(0, queries.shape[0], 64):
            recover_block(reference, queries[lo:lo + 64], config, rng, legacy)

        assert recovery.stats == legacy
        assert recovery.trace.confidence_trace() == legacy.confidence_trace

    def test_trace_never_draws_rng(self, fitted):
        """Traced and untraced runs repair the model identically."""
        model, queries = fitted
        config = RecoveryConfig(num_chunks=10)
        results = []
        for trace in (None, RecoveryTrace()):
            attacked, _ = attack(
                model, 0.10, "random", np.random.default_rng(2)
            )
            rng = np.random.default_rng(3)
            preds = recover_block(attacked, queries, config, rng, trace=trace)
            results.append((preds, attacked.class_hv.copy()))
        (p0, hv0), (p1, hv1) = results
        assert (p0 == p1).all()
        assert (hv0 == hv1).all()

    def test_event_totals_consistent(self, fitted):
        model, queries = fitted
        attacked, _ = attack(model, 0.10, "random", np.random.default_rng(2))
        recovery = RobustHDRecovery(
            attacked, RecoveryConfig(num_chunks=10), seed=3, block_size=40
        )
        recovery.process(queries)
        for e in recovery.trace:
            assert len(e.confidences) == e.queries
            assert sum(e.trusted_per_class) == e.trusted
            assert sum(sum(row) for row in e.chunk_repair_bits) == (
                e.bits_substituted
            )
            assert e.model_version_after >= e.model_version_before
