"""Tests for the Prometheus and JSONL metric exporters."""

import json

import pytest

from repro.obs.export import (
    append_jsonl,
    prometheus_name,
    render_prometheus,
    snapshot_line,
    write_prometheus,
)
from repro.obs.metrics import Histogram, MetricsRegistry


def make_registry():
    registry = MetricsRegistry()
    registry.inc("serve.fleet.batches", 12)
    registry.inc("serve.requests", 30)
    registry.gauge("serve.fleet.batch_duration_p95", 0.004)
    for value in (0.001, 0.002, 0.004):
        registry.observe("serve.adoption_lag_s", value)
    return registry


class TestPrometheusNames:
    def test_dots_become_underscores(self):
        assert prometheus_name("serve.fleet.batches") == (
            "repro_serve_fleet_batches"
        )

    def test_invalid_chars_sanitised(self):
        assert prometheus_name("a-b c.d") == "repro_a_b_c_d"

    def test_leading_digit_guarded(self):
        assert prometheus_name("9lives", prefix="")[0] == "_"


class TestRenderPrometheus:
    def test_counters_gauges_histograms(self):
        text = render_prometheus(make_registry())
        assert "# TYPE repro_serve_fleet_batches counter" in text
        assert "repro_serve_fleet_batches 12.0" in text
        assert "# TYPE repro_serve_fleet_batch_duration_p95 gauge" in text
        assert "# TYPE repro_serve_adoption_lag_s summary" in text
        assert 'repro_serve_adoption_lag_s{quantile="0.5"}' in text
        assert "repro_serve_adoption_lag_s_count 3" in text
        assert text.endswith("\n")

    def test_accepts_snapshot_dict(self):
        snapshot = make_registry().snapshot()
        assert render_prometheus(snapshot) == (
            render_prometheus(make_registry())
        )

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_write(self, tmp_path):
        path = write_prometheus(make_registry(), tmp_path / "metrics.prom")
        assert "repro_serve_requests" in path.read_text()


class TestJsonlSnapshots:
    def test_line_is_strict_json(self):
        record = json.loads(snapshot_line(make_registry()))
        assert record["counters"]["serve.fleet.batches"] == 12
        assert record["histograms"]["serve.adoption_lag_s"]["count"] == 3

    def test_empty_histogram_serialises_null_extremes(self):
        """The satellite fix: empty histograms must never emit inf."""
        registry = MetricsRegistry()
        registry.histograms["empty"] = Histogram()
        line = snapshot_line(registry)
        record = json.loads(line)  # json.loads in strict mode by default
        assert record["histograms"]["empty"]["min"] is None
        assert record["histograms"]["empty"]["max"] is None
        assert "Infinity" not in line

    def test_timestamp_leads_record(self):
        line = snapshot_line(make_registry(), timestamp_ns=123)
        assert line.startswith('{"timestamp_ns":123')

    def test_append_accumulates_lines(self, tmp_path):
        path = tmp_path / "snapshots.jsonl"
        append_jsonl(make_registry(), path, timestamp_ns=1)
        append_jsonl(make_registry(), path, timestamp_ns=2)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert [json.loads(x)["timestamp_ns"] for x in lines] == [1, 2]


class TestPrometheusEmptyHistogram:
    def test_empty_summary_renders_nan_not_crash(self):
        registry = MetricsRegistry()
        registry.histograms["empty"] = Histogram()
        text = render_prometheus(registry)
        assert "repro_empty_count 0" in text
