"""Tests for the ground-truth fault scorecard."""

import numpy as np
import pytest

from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier, HDCModel
from repro.core.pipeline import RecoveryExperiment
from repro.datasets.synthetic import make_prototype_classification
from repro.faults.api import FaultMask
from repro.obs.scorecard import fault_scorecard
from repro.obs.trace import RecoveryBlockEvent, RecoveryTrace


def trace_with_flags(flags, num_chunks):
    """One-event trace whose detector flagged exactly ``flags`` (k, m)."""
    flags = np.asarray(flags, dtype=np.int64)
    return RecoveryTrace(events=[RecoveryBlockEvent(
        block_index=0,
        queries=1,
        trusted=1,
        confidences=(1.0,),
        trusted_per_class=tuple(
            [1] + [0] * (flags.shape[0] - 1)
        ),
        num_chunks=num_chunks,
        chunk_flags=tuple(tuple(int(v) for v in row) for row in flags),
        chunk_repair_bits=tuple(
            tuple(0 for _ in row) for row in flags
        ),
        bits_substituted=0,
        model_version_before=0,
        model_version_after=0,
    )])


class TestHandBuilt:
    """P/R/F1 against a hand-constructed mask with known overlap."""

    def test_known_precision_recall(self):
        # 2 classes x 4 chunks of 8 dims each (dim=32, 1 bit per element).
        # Faulty cells (ground truth): (0,0), (0,1), (1,2).
        mask = FaultMask(
            bit_indices=np.array([0, 9, 32 + 16]),  # dims 0, 9 / class 1 dim 16
            shape=(2, 32),
            bits=1,
        )
        truth = mask.faulty_chunks(4)
        assert (truth == [[True, True, False, False],
                          [False, False, True, False]]).all()

        # Detector flagged (0,0) [hit], (0,2) [false alarm], (1,2) [hit];
        # missed (0,1).
        trace = trace_with_flags(
            [[1, 0, 1, 0], [0, 0, 1, 0]], num_chunks=4
        )
        card = fault_scorecard(trace, mask)

        assert card.overall.true_positives == 2
        assert card.overall.false_positives == 1
        assert card.overall.false_negatives == 1
        assert card.overall.precision == pytest.approx(2 / 3)
        assert card.overall.recall == pytest.approx(2 / 3)
        assert card.overall.f1 == pytest.approx(2 / 3)

        per = {s.label: s for s in card.per_class}
        assert per["0"].precision == pytest.approx(1 / 2)
        assert per["0"].recall == pytest.approx(1 / 2)
        assert per["1"].precision == pytest.approx(1.0)
        assert per["1"].recall == pytest.approx(1.0)
        assert card.injected_bits == 3

    def test_perfect_detection(self):
        mask = FaultMask(bit_indices=np.array([0, 40]), shape=(2, 32), bits=1)
        trace = trace_with_flags(
            [[1, 0, 0, 0], [0, 1, 0, 0]], num_chunks=4
        )
        card = fault_scorecard(trace, mask)
        assert card.overall.precision == 1.0
        assert card.overall.recall == 1.0
        assert card.overall.f1 == 1.0

    def test_empty_trace_all_false_negatives(self):
        mask = FaultMask(bit_indices=np.array([0, 40]), shape=(2, 32), bits=1)
        card = fault_scorecard(RecoveryTrace(), mask, num_chunks=4)
        assert card.overall.true_positives == 0
        assert card.overall.false_negatives == 2
        assert card.overall.recall == 0.0

    def test_empty_trace_needs_num_chunks(self):
        mask = FaultMask(bit_indices=np.array([0]), shape=(2, 32), bits=1)
        with pytest.raises(ValueError, match="num_chunks"):
            fault_scorecard(RecoveryTrace(), mask)

    def test_repair_efficacy(self):
        clean = HDCModel(
            class_hv=np.zeros((2, 32), dtype=np.uint8), bits=1
        )
        mask = FaultMask(
            bit_indices=np.array([0, 1, 40]), shape=(2, 32), bits=1
        )
        attacked = mask.applied_to(clean)
        # Repair exactly one of the three injected flips.
        with attacked.writable() as hv:
            hv[0, 0] = 0
        trace = trace_with_flags(
            [[1, 0, 0, 0], [0, 1, 0, 0]], num_chunks=4
        )
        card = fault_scorecard(
            trace, mask, clean_model=clean, recovered_model=attacked
        )
        assert card.repaired_bits == 1
        assert card.residual_bits == 2
        assert card.repair_efficacy == pytest.approx(1 / 3)

    def test_render(self):
        mask = FaultMask(bit_indices=np.array([0]), shape=(2, 32), bits=1)
        trace = trace_with_flags(
            [[1, 0, 0, 0], [0, 0, 0, 0]], num_chunks=4
        )
        text = fault_scorecard(trace, mask).render()
        assert "Fault scorecard" in text
        assert "precision" in text and "recall" in text and "f1" in text


class TestEndToEnd:
    def test_pipeline_outcome_carries_scorecard(self):
        task = make_prototype_classification(
            "toy", num_features=40, num_classes=4, num_train=200,
            num_test=160, boundary_fraction=0.4,
            boundary_depth=(0.25, 0.45), seed=11,
        )
        experiment = RecoveryExperiment(
            dataset=task, dim=1_000, epochs=0, stream_fraction=0.5, seed=0
        )
        outcome = experiment.attack_and_recover(0.08, passes=2, seed=1)
        assert outcome.fault_mask is not None
        assert outcome.trace is not None and len(outcome.trace) > 0
        card = outcome.scorecard
        assert card is not None
        assert card.injected_bits == outcome.fault_mask.num_faults
        assert 0.0 <= card.overall.recall <= 1.0
        assert card.repair_efficacy is not None
        assert 0.0 <= card.repair_efficacy <= 1.0

    def test_scorecard_reproducible_from_exported_jsonl(self, tmp_path):
        """Acceptance: P/R/F1 reproduce from the emitted JSONL trace."""
        task = make_prototype_classification(
            "toy", num_features=40, num_classes=4, num_train=200,
            num_test=160, boundary_fraction=0.4,
            boundary_depth=(0.25, 0.45), seed=11,
        )
        experiment = RecoveryExperiment(
            dataset=task, dim=1_000, epochs=0, stream_fraction=0.5, seed=0
        )
        outcome = experiment.attack_and_recover(0.08, passes=2, seed=1)
        path = outcome.trace.write_jsonl(tmp_path / "trace.jsonl")
        reloaded = RecoveryTrace.read_jsonl(path)
        card = fault_scorecard(reloaded, outcome.fault_mask)
        assert card.overall == outcome.scorecard.overall
        assert card.per_class == outcome.scorecard.per_class
        assert "overall" in card.render()
