"""Tests for softmax/margin prediction confidence."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.confidence import confident_mask, prediction_confidence, softmax


class TestSoftmax:
    def test_sums_to_one(self):
        p = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_stable_for_large_inputs(self):
        p = softmax(np.array([1e6, 1e6 + 1]))
        assert np.isfinite(p).all()

    def test_order_preserving(self):
        x = np.array([3.0, 1.0, 2.0])
        assert (np.argsort(softmax(x)) == np.argsort(x)).all()


class TestPredictionConfidence:
    def test_clear_winner_high_confidence(self):
        sims = np.array([[100.0, 10.0, 12.0, 11.0]])
        preds, conf = prediction_confidence(sims)
        assert preds[0] == 0
        assert conf[0] > 0.8

    def test_near_tie_low_confidence(self):
        sims = np.array([[50.0, 49.9, 10.0, 10.0]])
        _, conf = prediction_confidence(sims)
        assert conf[0] < 0.6

    def test_margin_method_range(self):
        rng = np.random.default_rng(0)
        sims = rng.normal(size=(50, 8))
        _, conf = prediction_confidence(sims, method="margin")
        assert (conf > 0.5).all() or np.allclose(conf[conf <= 0.5], 0.5)
        assert (conf <= 1.0).all()

    def test_softmax_method_range(self):
        rng = np.random.default_rng(1)
        sims = rng.normal(size=(50, 8))
        _, conf = prediction_confidence(sims, method="softmax")
        assert (conf > 1 / 8).all()
        assert (conf <= 1.0).all()

    @given(st.floats(min_value=1.0, max_value=1000.0))
    def test_scale_invariance(self, scale):
        """Z-scoring makes the confidence invariant to affine rescaling
        of the similarity values — Hamming counts vs dot products."""
        sims = np.array([[5.0, 3.0, 1.0]])
        _, base = prediction_confidence(sims)
        _, scaled = prediction_confidence(sims * scale + 7.0)
        assert np.allclose(base, scaled)

    def test_temperature_sharpens(self):
        sims = np.array([[5.0, 4.0, 1.0]])
        _, sharp = prediction_confidence(sims, temperature=0.1)
        _, soft = prediction_confidence(sims, temperature=5.0)
        assert sharp[0] > soft[0]

    def test_one_dim_input(self):
        preds, conf = prediction_confidence(np.array([1.0, 9.0]))
        assert preds.shape == (1,)
        assert preds[0] == 1

    def test_constant_row_no_nan(self):
        _, conf = prediction_confidence(np.array([[2.0, 2.0, 2.0]]))
        assert np.isfinite(conf).all()

    def test_bad_temperature(self):
        with pytest.raises(ValueError, match="temperature"):
            prediction_confidence(np.zeros((1, 3)), temperature=0.0)

    def test_bad_method(self):
        with pytest.raises(ValueError, match="method"):
            prediction_confidence(np.zeros((1, 3)), method="magic")

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="two classes"):
            prediction_confidence(np.zeros((1, 1)))


class TestConfidentMask:
    def test_mask_thresholding(self):
        sims = np.array([[100.0, 0.0, 0.0, 0.0], [1.0, 1.4, 0.2, 1.5]])
        preds, conf, mask = confident_mask(sims, threshold=0.9)
        assert mask[0] and not mask[1]
        assert preds[0] == 0 and preds[1] == 3

    def test_margin_confidence_ceiling(self):
        """The margin confidence saturates at sigmoid(k / sqrt(k - 1)) —
        a one-hot winner cannot exceed it, so thresholds must be chosen
        below the ceiling for the class count in play."""
        for k in (2, 3, 8):
            sims = np.zeros((1, k))
            sims[0, 0] = 100.0
            _, conf = prediction_confidence(sims)
            ceiling = 1.0 / (1.0 + np.exp(-k / np.sqrt(k - 1)))
            assert conf[0] == pytest.approx(ceiling, abs=1e-9)

    def test_zero_threshold_trusts_all(self):
        sims = np.random.default_rng(2).normal(size=(10, 4))
        _, _, mask = confident_mask(sims, threshold=0.0)
        assert mask.all()
