"""Tests for noisy-chunk detection."""

import numpy as np
import pytest

from repro.core.chunks import (
    chunk_accuracy_profile,
    chunk_similarities,
    chunk_similarities_batch,
    detect_faulty_chunks,
    detect_faulty_chunks_batch,
)
from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier, HDCModel
from repro.core.packed import float_backend
from repro.datasets.synthetic import make_prototype_classification


@pytest.fixture(scope="module")
def fitted():
    task = make_prototype_classification(
        "toy", num_features=40, num_classes=4, num_train=200, num_test=80,
        boundary_fraction=0.2, boundary_depth=(0.25, 0.4), seed=6,
    )
    encoder = Encoder(num_features=40, dim=1_000, seed=2)
    clf = HDCClassifier(encoder, num_classes=4, epochs=0).fit(
        task.train_x, task.train_y
    )
    encoded_test = encoder.encode_batch(task.test_x)
    return clf.model, encoded_test, np.asarray(task.test_y)


class TestChunkSimilarities:
    def test_chunks_sum_to_global(self, fitted):
        """Per-chunk scores partition the full similarity exactly."""
        model, queries, _ = fitted
        q = queries[0]
        sims = chunk_similarities(model, q, 10)
        total = model.similarities(q[None, :])[0]
        assert np.allclose(sims.sum(axis=0), total)

    def test_shape(self, fitted):
        model, queries, _ = fitted
        assert chunk_similarities(model, queries[0], 20).shape == (20, 4)

    def test_rejects_batch(self, fitted):
        model, queries, _ = fitted
        with pytest.raises(ValueError, match="single 1-D"):
            chunk_similarities(model, queries[:2], 10)

    def test_rejects_dim_mismatch(self, fitted):
        model, _, _ = fitted
        with pytest.raises(ValueError, match="dim"):
            chunk_similarities(model, np.zeros(999, dtype=np.uint8), 10)


class TestDetectFaultyChunks:
    def test_clean_model_mostly_healthy(self, fitted):
        model, queries, labels = fitted
        flags = 0
        for q in queries[:30]:
            pred = int(model.predict(q[None, :])[0])
            flags += detect_faulty_chunks(model, q, pred, 10, margin=0.03).sum()
        assert flags / (30 * 10) < 0.10

    def test_damaged_chunk_detected(self, fitted):
        """Concentrated damage in one chunk of the right class trips the
        detector for that chunk specifically."""
        model, queries, labels = fitted
        damaged = model.copy()
        q = queries[0]
        pred = int(model.predict(q[None, :])[0])
        # Invert chunk 3 of the predicted class outright.
        d = model.dim // 10
        damaged.class_hv[pred, 3 * d : 4 * d] ^= 1
        faulty = detect_faulty_chunks(damaged, q, pred, 10, margin=0.03)
        assert faulty[3]

    def test_margin_zero_is_strict(self, fitted):
        model, queries, _ = fitted
        q = queries[0]
        pred = int(model.predict(q[None, :])[0])
        strict = detect_faulty_chunks(model, q, pred, 10, margin=0.0)
        lenient = detect_faulty_chunks(model, q, pred, 10, margin=0.2)
        assert strict.sum() >= lenient.sum()

    def test_bad_predicted(self, fitted):
        model, queries, _ = fitted
        with pytest.raises(ValueError, match="predicted class"):
            detect_faulty_chunks(model, queries[0], 99, 10)

    def test_bad_margin(self, fitted):
        model, queries, _ = fitted
        with pytest.raises(ValueError, match="margin"):
            detect_faulty_chunks(model, queries[0], 0, 10, margin=-0.1)


class TestBatchedChunkOps:
    """The batched sweeps must equal per-query loops on both backends."""

    # dim=1280/m=20 exercises the word-aligned packed path; the fitted
    # fixture (dim=1000/m=10) exercises the einsum fallback.
    @pytest.fixture(scope="class")
    def aligned(self):
        rng = np.random.default_rng(21)
        model = HDCModel(rng.integers(0, 2, (5, 1280), dtype=np.uint8))
        queries = rng.integers(0, 2, (16, 1280), dtype=np.uint8)
        return model, queries

    def test_batch_equals_loop_aligned(self, aligned):
        model, queries = aligned
        batched = chunk_similarities_batch(model, queries, 20)
        looped = np.stack(
            [chunk_similarities(model, q, 20) for q in queries]
        )
        assert (batched == looped).all()

    def test_batch_equals_loop_fallback(self, fitted):
        model, queries, _ = fitted
        batched = chunk_similarities_batch(model, queries[:16], 10)
        with float_backend():
            looped = np.stack(
                [chunk_similarities(model, q, 10) for q in queries[:16]]
            )
        assert (batched == looped).all()

    def test_detect_batch_equals_loop(self, aligned):
        model, queries = aligned
        preds = model.predict(queries)
        batched = detect_faulty_chunks_batch(model, queries, preds, 20, 0.02)
        looped = np.stack(
            [
                detect_faulty_chunks(model, q, int(p), 20, 0.02)
                for q, p in zip(queries, preds)
            ]
        )
        assert (batched == looped).all()

    def test_detect_batch_validates_predicted(self, aligned):
        model, queries = aligned
        with pytest.raises(ValueError, match="predicted class"):
            detect_faulty_chunks_batch(
                model, queries, np.full(queries.shape[0], 99), 20
            )
        with pytest.raises(ValueError, match="predicted must be"):
            detect_faulty_chunks_batch(model, queries, np.array([0]), 20)


class TestChunkAccuracyProfile:
    def test_batched_equals_loop_reference(self, fitted):
        """The vectorised profile matches the per-query loop it replaced."""
        model, queries, labels = fitted
        vectorised = chunk_accuracy_profile(
            model, queries[:40], labels[:40], 10
        )
        hits = np.zeros(10, dtype=np.int64)
        for query, label in zip(queries[:40], labels[:40]):
            sims = chunk_similarities(model, query, 10)
            hits += np.argmax(sims, axis=1) == label
        assert (vectorised == hits / 40.0).all()

    def test_profile_above_chance(self, fitted):
        model, queries, labels = fitted
        profile = chunk_accuracy_profile(model, queries[:40], labels[:40], 10)
        assert profile.shape == (10,)
        assert (profile > 1.0 / 4).all()  # every chunk beats chance

    def test_damage_dents_profile(self, fitted):
        model, queries, labels = fitted
        damaged = model.copy()
        d = model.dim // 10
        damaged.class_hv[:, 5 * d : 6 * d] ^= 1  # nuke chunk 5 of all classes
        clean = chunk_accuracy_profile(model, queries[:40], labels[:40], 10)
        hurt = chunk_accuracy_profile(damaged, queries[:40], labels[:40], 10)
        assert hurt[5] < clean[5]
