"""Tests for the end-to-end RecoveryExperiment pipeline."""

import numpy as np
import pytest

from repro.core.packed import float_backend
from repro.core.pipeline import RecoveryExperiment
from repro.core.recovery import RecoveryConfig
from repro.datasets.synthetic import make_prototype_classification


@pytest.fixture(scope="module")
def experiment():
    task = make_prototype_classification(
        "toy", num_features=50, num_classes=4, num_train=260, num_test=200,
        boundary_fraction=0.4, boundary_depth=(0.25, 0.45), seed=8,
    )
    return RecoveryExperiment(dataset=task, dim=2_000, epochs=0, stream_fraction=0.5,
                              seed=0)


class TestConstruction:
    def test_splits(self, experiment):
        assert experiment.stream_queries.shape[0] == 100
        assert experiment.eval_queries.shape[0] == 100
        assert experiment.eval_labels.shape[0] == 100

    def test_clean_accuracy_reasonable(self, experiment):
        assert experiment.clean_accuracy > 0.7

    def test_bad_stream_fraction(self):
        task = make_prototype_classification(
            "toy", num_features=10, num_classes=2, num_train=20, num_test=10,
            seed=1,
        )
        with pytest.raises(ValueError, match="stream_fraction"):
            RecoveryExperiment(dataset=task, dim=500, stream_fraction=1.0)


class TestAttackOnly:
    def test_loss_grows_with_rate(self, experiment):
        small = np.mean([experiment.attack_only(0.02, seed=s) for s in range(5)])
        large = np.mean([experiment.attack_only(0.25, seed=s) for s in range(5)])
        assert large > small

    def test_zero_rate_zero_loss(self, experiment):
        assert experiment.attack_only(0.0, seed=0) == 0.0

    def test_seeded(self, experiment):
        assert experiment.attack_only(0.1, seed=4) == experiment.attack_only(
            0.1, seed=4
        )


class TestAttackAndRecover:
    def test_outcome_structure(self, experiment):
        out = experiment.attack_and_recover(0.10, passes=2, seed=1)
        assert out.clean_accuracy == experiment.clean_accuracy
        assert len(out.accuracy_trace) == 2
        assert out.recovered_accuracy == out.accuracy_trace[-1]
        assert out.loss_without_recovery == pytest.approx(
            out.clean_accuracy - out.attacked_accuracy
        )
        assert out.stats.queries_seen == 2 * experiment.stream_queries.shape[0]

    def test_model_is_restored_between_runs(self, experiment):
        """attack_and_recover must not mutate the experiment's clean model."""
        before = experiment.model.class_hv.copy()
        experiment.attack_and_recover(0.10, passes=1, seed=2)
        assert (experiment.model.class_hv == before).all()

    def test_custom_config(self, experiment):
        config = RecoveryConfig(confidence_threshold=0.99,
                                substitution_rate=0.05)
        out = experiment.attack_and_recover(0.05, config, passes=1, seed=3)
        assert out.stats.queries_trusted <= out.stats.queries_seen

    def test_bad_passes(self, experiment):
        with pytest.raises(ValueError, match="passes"):
            experiment.attack_and_recover(0.1, passes=0)

    def test_packed_and_float_outcomes_identical(self, experiment):
        """End to end: the same seeded attack→recover run produces an
        identical RecoveryOutcome on the packed and float backends."""
        packed_out = experiment.attack_and_recover(0.10, passes=2, seed=6)
        with float_backend():
            float_out = experiment.attack_and_recover(0.10, passes=2, seed=6)
        assert packed_out.attacked_accuracy == float_out.attacked_accuracy
        assert packed_out.recovered_accuracy == float_out.recovered_accuracy
        assert packed_out.accuracy_trace == float_out.accuracy_trace
        assert (
            packed_out.stats.bits_substituted
            == float_out.stats.bits_substituted
        )
        assert (
            packed_out.stats.confidence_trace
            == float_out.stats.confidence_trace
        )

    def test_block_size_does_not_change_outcome(self, experiment):
        serial = experiment.attack_and_recover(0.10, passes=1, seed=7,
                                               block_size=1)
        batched = experiment.attack_and_recover(0.10, passes=1, seed=7,
                                                block_size=64)
        assert serial.recovered_accuracy == batched.recovered_accuracy
        assert serial.stats.bits_substituted == batched.stats.bits_substituted
