"""Tests for the ID-level encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoder import (
    Encoder,
    clear_codebook_cache,
    quantize_features,
)
from repro.core.hypervector import hamming_distance
from repro.core.packed import PackedHypervectors, float_backend, unpack


class TestQuantizeFeatures:
    def test_range_mapping(self):
        idx = quantize_features(np.array([0.0, 0.5, 1.0]), 4, 0.0, 1.0)
        assert list(idx) == [0, 2, 3]

    def test_clipping_saturates(self):
        idx = quantize_features(np.array([-5.0, 5.0]), 8, 0.0, 1.0)
        assert list(idx) == [0, 7]

    def test_full_range_covered(self):
        values = np.linspace(0, 1, 1000)
        idx = quantize_features(values, 16, 0.0, 1.0)
        assert set(idx) == set(range(16))

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=2, max_value=64))
    def test_always_in_range(self, value, levels):
        idx = quantize_features(np.array([value]), levels, 0.0, 1.0)
        assert 0 <= idx[0] < levels

    def test_monotone(self):
        values = np.sort(np.random.default_rng(0).random(100))
        idx = quantize_features(values, 10, 0.0, 1.0)
        assert (np.diff(idx) >= 0).all()

    def test_bad_levels(self):
        with pytest.raises(ValueError, match="levels"):
            quantize_features(np.zeros(3), 1, 0.0, 1.0)

    def test_bad_range(self):
        with pytest.raises(ValueError, match="high > low"):
            quantize_features(np.zeros(3), 4, 1.0, 1.0)


class TestEncoder:
    def test_shapes(self):
        enc = Encoder(num_features=10, dim=256, seed=0)
        assert enc.base.shape == (10, 256)
        assert enc.level.shape == (32, 256)
        out = enc.encode(np.random.default_rng(0).random(10))
        assert out.shape == (256,)
        assert out.dtype == np.uint8

    def test_batch_matches_single(self):
        enc = Encoder(num_features=8, dim=128, seed=1)
        rng = np.random.default_rng(2)
        batch = rng.random((5, 8))
        encoded = enc.encode_batch(batch)
        for i in range(5):
            assert (encoded[i] == enc.encode(batch[i])).all()

    def test_deterministic_across_instances(self):
        """Same parameters + seed => identical codebooks and encodings."""
        x = np.random.default_rng(3).random(6)
        a = Encoder(num_features=6, dim=128, seed=9).encode(x)
        b = Encoder(num_features=6, dim=128, seed=9).encode(x)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        x = np.random.default_rng(3).random(6)
        a = Encoder(num_features=6, dim=512, seed=1).encode(x)
        b = Encoder(num_features=6, dim=512, seed=2).encode(x)
        assert (a != b).any()

    def test_locality(self):
        """Closer inputs encode to closer hypervectors."""
        enc = Encoder(num_features=20, dim=4_096, seed=4)
        rng = np.random.default_rng(5)
        x = rng.random(20)
        near = np.clip(x + 0.02, 0, 1)
        far = rng.random(20)
        d_near = hamming_distance(enc.encode(x), enc.encode(near))
        d_far = hamming_distance(enc.encode(x), enc.encode(far))
        assert d_near < d_far

    def test_identical_inputs_identical_codes(self):
        enc = Encoder(num_features=5, dim=128, seed=6)
        x = np.full(5, 0.3)
        assert (enc.encode(x) == enc.encode(x.copy())).all()

    def test_encode_rejects_matrix(self):
        enc = Encoder(num_features=5, dim=64, seed=0)
        with pytest.raises(ValueError, match="1-D"):
            enc.encode(np.zeros((2, 5)))

    def test_encode_batch_rejects_vector(self):
        enc = Encoder(num_features=5, dim=64, seed=0)
        with pytest.raises(ValueError, match="2-D"):
            enc.encode_batch(np.zeros(5))

    def test_feature_count_mismatch(self):
        enc = Encoder(num_features=5, dim=64, seed=0)
        with pytest.raises(ValueError, match="expected 5 features"):
            enc.encode_batch(np.zeros((2, 6)))

    def test_large_batch_block_split(self):
        """Batches larger than the internal working-set block agree with
        per-row encoding (covers the block loop)."""
        enc = Encoder(num_features=400, dim=2_000, seed=7)
        rng = np.random.default_rng(8)
        batch = rng.random((90, 400))  # forces multiple blocks
        encoded = enc.encode_batch(batch)
        assert (encoded[77] == enc.encode(batch[77])).all()

    @pytest.mark.parametrize(
        "kwargs", [dict(num_features=0, dim=64), dict(num_features=3, dim=1)]
    )
    def test_bad_construction(self, kwargs):
        with pytest.raises(ValueError):
            Encoder(seed=0, **kwargs)


class TestQuantizeNonFinite:
    def test_nan_raises_with_position(self):
        batch = np.array([[0.1, 0.2], [np.nan, 0.4]])
        with pytest.raises(ValueError, match=r"non-finite.*\(1, 0\)"):
            quantize_features(batch, 4, 0.0, 1.0)

    def test_inf_raises(self):
        with pytest.raises(ValueError, match="non-finite"):
            quantize_features(np.array([0.1, np.inf]), 4, 0.0, 1.0)

    def test_negative_inf_raises(self):
        with pytest.raises(ValueError, match="non-finite"):
            quantize_features(np.array([-np.inf]), 4, 0.0, 1.0)

    def test_count_reported(self):
        with pytest.raises(ValueError, match="3 non-finite"):
            quantize_features(
                np.array([np.nan, 1.0, np.nan, np.inf]), 4, 0.0, 1.0
            )

    def test_long_lists_truncated(self):
        with pytest.raises(ValueError, match=r"\.\.\."):
            quantize_features(np.full(20, np.nan), 4, 0.0, 1.0)

    def test_nan_propagates_to_encoder(self):
        enc = Encoder(num_features=3, dim=64, seed=0)
        with pytest.raises(ValueError, match="non-finite"):
            enc.encode(np.array([0.1, np.nan, 0.3]))


@st.composite
def encoder_and_batch(draw):
    """Random encoder geometry + feature batch, biased toward edge cases.

    Dims straddle the 64-bit word boundary (including non-multiples of
    64) and num_features includes the degenerate single-feature encoder.
    """
    num_features = draw(st.sampled_from([1, 2, 3, 7, 16]))
    dim = draw(st.sampled_from([2, 63, 64, 65, 127, 128, 130, 200, 256]))
    levels = draw(st.sampled_from([2, 3, 8, 32]))
    if dim < levels:
        levels = 2
    batch = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    enc = Encoder(
        num_features=num_features, dim=dim, levels=levels, seed=seed % 97
    )
    return enc, rng.random((batch, num_features))


class TestPackedEncodingEquivalence:
    @given(encoder_and_batch())
    @settings(deadline=None)
    def test_packed_matches_reference(self, case):
        enc, batch = case
        assert (enc.encode_batch(batch) == enc.encode_batch_reference(batch)).all()

    @given(encoder_and_batch())
    @settings(deadline=None)
    def test_encode_packed_matches_reference(self, case):
        enc, batch = case
        packed = enc.encode_packed(batch)
        assert packed.dim == enc.dim
        assert (unpack(packed) == enc.encode_batch_reference(batch)).all()

    @given(encoder_and_batch())
    @settings(deadline=None)
    def test_float_backend_matches(self, case):
        enc, batch = case
        fast = enc.encode_batch(batch)
        with float_backend():
            assert (enc.encode_batch(batch) == fast).all()

    def test_single_feature_majority(self):
        """n=1: the bundle of one bound vector is that vector."""
        enc = Encoder(num_features=1, dim=100, levels=4, seed=0)
        x = np.array([[0.7]])
        idx = quantize_features(x, 4, 0.0, 1.0)[0, 0]
        expected = enc.base[0] ^ enc.level[idx]
        assert (enc.encode_batch(x)[0] == expected).all()

    def test_blocked_equals_unblocked(self):
        enc_small = Encoder(
            num_features=6, dim=130, seed=2, encode_block_bytes=1
        )
        enc_big = Encoder(num_features=6, dim=130, seed=2)
        batch = np.random.default_rng(0).random((40, 6))
        assert (enc_small.encode_batch(batch) == enc_big.encode_batch(batch)).all()
        assert (
            unpack(enc_small.encode_packed(batch))
            == unpack(enc_big.encode_packed(batch))
        ).all()


class TestBlockBytes:
    def test_default_matches_seed_heuristic(self):
        enc = Encoder(num_features=64, dim=10_000, seed=0)
        assert enc.block_bytes() == 64_000_000
        # Reference path: identical blocking to the old hard-coded
        # max_cells // (n * dim) heuristic.
        assert enc.rows_per_block(packed=False) == 64_000_000 // (64 * 10_000)

    def test_field_override(self):
        enc = Encoder(num_features=4, dim=64, seed=0, encode_block_bytes=1024)
        assert enc.block_bytes() == 1024

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENCODE_BLOCK_BYTES", "2048")
        enc = Encoder(num_features=4, dim=64, seed=0)
        assert enc.block_bytes() == 2048

    def test_field_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENCODE_BLOCK_BYTES", "2048")
        enc = Encoder(num_features=4, dim=64, seed=0, encode_block_bytes=512)
        assert enc.block_bytes() == 512

    def test_bad_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENCODE_BLOCK_BYTES", "lots")
        enc = Encoder(num_features=4, dim=64, seed=0)
        with pytest.raises(ValueError, match="REPRO_ENCODE_BLOCK_BYTES"):
            enc.block_bytes()

    def test_bad_env_negative(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENCODE_BLOCK_BYTES", "0")
        enc = Encoder(num_features=4, dim=64, seed=0)
        with pytest.raises(ValueError, match=">= 1"):
            enc.block_bytes()

    def test_bad_field(self):
        with pytest.raises(ValueError, match="encode_block_bytes"):
            Encoder(num_features=4, dim=64, seed=0, encode_block_bytes=0)

    def test_rows_always_positive(self):
        enc = Encoder(num_features=500, dim=10_000, seed=0, encode_block_bytes=1)
        assert enc.rows_per_block(packed=True) == 1
        assert enc.rows_per_block(packed=False) == 1


class TestCodebookCache:
    def test_same_params_share_tables(self):
        clear_codebook_cache()
        a = Encoder(num_features=6, dim=128, levels=4, seed=11)
        b = Encoder(num_features=6, dim=128, levels=4, seed=11)
        assert a.base is b.base
        assert a.level is b.level

    def test_shared_tables_read_only(self):
        enc = Encoder(num_features=6, dim=128, seed=12)
        with pytest.raises(ValueError):
            enc.base[0, 0] = 1

    def test_different_params_differ(self):
        a = Encoder(num_features=6, dim=128, levels=4, seed=13)
        b = Encoder(num_features=6, dim=128, levels=8, seed=13)
        assert a.base is not b.base or a.level is not b.level

    def test_clear_forces_regeneration(self):
        a = Encoder(num_features=6, dim=128, seed=14)
        clear_codebook_cache()
        b = Encoder(num_features=6, dim=128, seed=14)
        assert a.base is not b.base
        assert (a.base == b.base).all()  # still deterministic

    def test_eviction_keeps_determinism(self):
        clear_codebook_cache()
        first = Encoder(num_features=2, dim=64, seed=100)
        for i in range(12):  # overflow the LRU
            Encoder(num_features=2, dim=64, seed=200 + i)
        again = Encoder(num_features=2, dim=64, seed=100)
        assert (first.base == again.base).all()


class TestPackedCodebook:
    def test_shape_and_reuse(self):
        enc = Encoder(num_features=5, dim=130, levels=4, seed=0)
        cb = enc.packed_codebook()
        assert cb.words.shape == (5, 4, 3)  # ceil(130 / 64) == 3
        assert cb.dim == 130
        assert enc.packed_codebook() is cb  # cached

    def test_words_match_bound_pairs(self):
        enc = Encoder(num_features=3, dim=100, levels=4, seed=1)
        cb = enc.packed_codebook()
        for k in range(3):
            for lvl in range(4):
                expected = enc.base[k] ^ enc.level[lvl]
                got = unpack(
                    PackedHypervectors(
                        words=cb.words[k, lvl][None, :], dim=100, single=True
                    )
                )
                assert (got == expected).all()

    def test_version_stamp_invalidates(self):
        enc = Encoder(num_features=3, dim=64, levels=4, seed=2)
        cb = enc.packed_codebook()
        enc.base = enc.base.copy()  # replace the table...
        enc.base[0] ^= 1
        enc.bump_codebook_version()  # ...and honour the write contract
        cb2 = enc.packed_codebook()
        assert cb2 is not cb
        assert cb2.version == enc.codebook_version
        assert (cb2.words != cb.words).any()

    def test_stale_codebook_not_served(self):
        enc = Encoder(num_features=2, dim=64, levels=2, seed=3)
        x = np.array([[0.1, 0.9]])
        before = enc.encode_batch(x)
        enc.base = 1 - enc.base
        enc.bump_codebook_version()
        after = enc.encode_batch(x)
        assert (after == enc.encode_batch_reference(x)).all()
        assert (before != after).any()
