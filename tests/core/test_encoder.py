"""Tests for the ID-level encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoder import Encoder, quantize_features
from repro.core.hypervector import hamming_distance


class TestQuantizeFeatures:
    def test_range_mapping(self):
        idx = quantize_features(np.array([0.0, 0.5, 1.0]), 4, 0.0, 1.0)
        assert list(idx) == [0, 2, 3]

    def test_clipping_saturates(self):
        idx = quantize_features(np.array([-5.0, 5.0]), 8, 0.0, 1.0)
        assert list(idx) == [0, 7]

    def test_full_range_covered(self):
        values = np.linspace(0, 1, 1000)
        idx = quantize_features(values, 16, 0.0, 1.0)
        assert set(idx) == set(range(16))

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=2, max_value=64))
    def test_always_in_range(self, value, levels):
        idx = quantize_features(np.array([value]), levels, 0.0, 1.0)
        assert 0 <= idx[0] < levels

    def test_monotone(self):
        values = np.sort(np.random.default_rng(0).random(100))
        idx = quantize_features(values, 10, 0.0, 1.0)
        assert (np.diff(idx) >= 0).all()

    def test_bad_levels(self):
        with pytest.raises(ValueError, match="levels"):
            quantize_features(np.zeros(3), 1, 0.0, 1.0)

    def test_bad_range(self):
        with pytest.raises(ValueError, match="high > low"):
            quantize_features(np.zeros(3), 4, 1.0, 1.0)


class TestEncoder:
    def test_shapes(self):
        enc = Encoder(num_features=10, dim=256, seed=0)
        assert enc.base.shape == (10, 256)
        assert enc.level.shape == (32, 256)
        out = enc.encode(np.random.default_rng(0).random(10))
        assert out.shape == (256,)
        assert out.dtype == np.uint8

    def test_batch_matches_single(self):
        enc = Encoder(num_features=8, dim=128, seed=1)
        rng = np.random.default_rng(2)
        batch = rng.random((5, 8))
        encoded = enc.encode_batch(batch)
        for i in range(5):
            assert (encoded[i] == enc.encode(batch[i])).all()

    def test_deterministic_across_instances(self):
        """Same parameters + seed => identical codebooks and encodings."""
        x = np.random.default_rng(3).random(6)
        a = Encoder(num_features=6, dim=128, seed=9).encode(x)
        b = Encoder(num_features=6, dim=128, seed=9).encode(x)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        x = np.random.default_rng(3).random(6)
        a = Encoder(num_features=6, dim=512, seed=1).encode(x)
        b = Encoder(num_features=6, dim=512, seed=2).encode(x)
        assert (a != b).any()

    def test_locality(self):
        """Closer inputs encode to closer hypervectors."""
        enc = Encoder(num_features=20, dim=4_096, seed=4)
        rng = np.random.default_rng(5)
        x = rng.random(20)
        near = np.clip(x + 0.02, 0, 1)
        far = rng.random(20)
        d_near = hamming_distance(enc.encode(x), enc.encode(near))
        d_far = hamming_distance(enc.encode(x), enc.encode(far))
        assert d_near < d_far

    def test_identical_inputs_identical_codes(self):
        enc = Encoder(num_features=5, dim=128, seed=6)
        x = np.full(5, 0.3)
        assert (enc.encode(x) == enc.encode(x.copy())).all()

    def test_encode_rejects_matrix(self):
        enc = Encoder(num_features=5, dim=64, seed=0)
        with pytest.raises(ValueError, match="1-D"):
            enc.encode(np.zeros((2, 5)))

    def test_encode_batch_rejects_vector(self):
        enc = Encoder(num_features=5, dim=64, seed=0)
        with pytest.raises(ValueError, match="2-D"):
            enc.encode_batch(np.zeros(5))

    def test_feature_count_mismatch(self):
        enc = Encoder(num_features=5, dim=64, seed=0)
        with pytest.raises(ValueError, match="expected 5 features"):
            enc.encode_batch(np.zeros((2, 6)))

    def test_large_batch_block_split(self):
        """Batches larger than the internal working-set block agree with
        per-row encoding (covers the block loop)."""
        enc = Encoder(num_features=400, dim=2_000, seed=7)
        rng = np.random.default_rng(8)
        batch = rng.random((90, 400))  # forces multiple blocks
        encoded = enc.encode_batch(batch)
        assert (encoded[77] == enc.encode(batch[77])).all()

    @pytest.mark.parametrize(
        "kwargs", [dict(num_features=0, dim=64), dict(num_features=3, dim=1)]
    )
    def test_bad_construction(self, kwargs):
        with pytest.raises(ValueError):
            Encoder(seed=0, **kwargs)
