"""Tests for the associative cleanup item memory."""

import numpy as np
import pytest

from repro.core.hypervector import bind, flip_bits, random_hypervectors
from repro.core.itemmemory import ItemMemory


@pytest.fixture()
def memory():
    rng = np.random.default_rng(0)
    mem = ItemMemory(dim=4_096)
    items = random_hypervectors(20, 4_096, rng)
    for i, hv in enumerate(items):
        mem.add(f"item{i}", hv)
    return mem, items


class TestStore:
    def test_add_get(self, memory):
        mem, items = memory
        assert len(mem) == 20
        assert "item3" in mem
        assert (mem.get("item3") == items[3]).all()

    def test_get_returns_copy(self, memory):
        mem, items = memory
        got = mem.get("item0")
        got[:] = 0
        assert (mem.get("item0") == items[0]).all()

    def test_duplicate_name_rejected(self, memory):
        mem, items = memory
        with pytest.raises(KeyError, match="already"):
            mem.add("item0", items[0])

    def test_missing_name(self, memory):
        mem, _ = memory
        with pytest.raises(KeyError, match="no item"):
            mem.get("nope")

    def test_dim_checked(self, memory):
        mem, _ = memory
        with pytest.raises(ValueError, match="length"):
            mem.add("bad", np.zeros(10, dtype=np.uint8))

    def test_binary_checked(self, memory):
        mem, _ = memory
        with pytest.raises(ValueError, match="binary"):
            mem.add("bad", np.full(4_096, 2, dtype=np.uint8))


class TestCleanup:
    def test_exact_match(self, memory):
        mem, items = memory
        name, clean, dist = mem.cleanup(items[7])
        assert name == "item7"
        assert dist == 0
        assert (clean == items[7]).all()

    def test_noise_tolerance(self, memory):
        """A third of the dimensions flipped still resolves correctly —
        the associative-recall form of HDC's redundancy."""
        mem, items = memory
        rng = np.random.default_rng(1)
        noisy = flip_bits(
            items[5], rng.choice(4_096, size=4_096 // 3, replace=False)
        )
        name, _, dist = mem.cleanup(noisy)
        assert name == "item5"
        assert dist == 4_096 // 3

    def test_unbind_then_cleanup(self, memory):
        """Decoding a bound pair: unbind with one operand, clean up the
        other — the canonical HDC data-structure read."""
        mem, items = memory
        composite = bind(items[2], items[9])
        recovered = bind(composite, items[9])
        name, _, dist = mem.cleanup(recovered)
        assert name == "item2" and dist == 0

    def test_batch(self, memory):
        mem, items = memory
        names = mem.cleanup_batch(items[[4, 1, 4]])
        assert names == ["item4", "item1", "item4"]

    def test_empty_memory(self):
        mem = ItemMemory(dim=64)
        with pytest.raises(RuntimeError, match="empty"):
            mem.cleanup(np.zeros(64, dtype=np.uint8))

    def test_query_shape_checked(self, memory):
        mem, _ = memory
        with pytest.raises(ValueError, match="length"):
            mem.cleanup(np.zeros(8, dtype=np.uint8))
