"""Tests for model persistence."""

import numpy as np
import pytest

from repro.core.encoder import Encoder
from repro.core.io import load_classifier, save_classifier
from repro.core.model import HDCClassifier
from repro.datasets.synthetic import make_prototype_classification


@pytest.fixture(scope="module")
def fitted():
    task = make_prototype_classification(
        "toy", num_features=20, num_classes=3, num_train=150, num_test=60,
        seed=14,
    )
    encoder = Encoder(num_features=20, dim=512, levels=16, seed=5)
    clf = HDCClassifier(encoder, num_classes=3, epochs=1, seed=2).fit(
        task.train_x, task.train_y
    )
    return task, clf


class TestSaveLoad:
    def test_roundtrip_predictions_identical(self, fitted, tmp_path):
        task, clf = fitted
        path = tmp_path / "model.npz"
        save_classifier(path, clf)
        loaded = load_classifier(path)
        assert (loaded.predict(task.test_x) == clf.predict(task.test_x)).all()

    def test_roundtrip_model_bits_identical(self, fitted, tmp_path):
        _, clf = fitted
        path = tmp_path / "model.npz"
        save_classifier(path, clf)
        loaded = load_classifier(path)
        assert (loaded.model.class_hv == clf.model.class_hv).all()
        assert loaded.model.bits == clf.model.bits

    def test_encoder_regenerated_identically(self, fitted, tmp_path):
        task, clf = fitted
        path = tmp_path / "model.npz"
        save_classifier(path, clf)
        loaded = load_classifier(path)
        x = task.test_x[:3]
        assert (
            loaded.encoder.encode_batch(x) == clf.encoder.encode_batch(x)
        ).all()

    def test_hyperparameters_preserved(self, fitted, tmp_path):
        _, clf = fitted
        path = tmp_path / "model.npz"
        save_classifier(path, clf)
        loaded = load_classifier(path)
        assert loaded.num_classes == clf.num_classes
        assert loaded.epochs == clf.epochs
        assert loaded.encoder.levels == clf.encoder.levels

    def test_unfitted_rejected(self, tmp_path):
        encoder = Encoder(num_features=4, dim=64, seed=0)
        clf = HDCClassifier(encoder, num_classes=2)
        with pytest.raises(ValueError, match="not fitted"):
            save_classifier(tmp_path / "m.npz", clf)

    def test_version_check(self, fitted, tmp_path):
        _, clf = fitted
        path = tmp_path / "model.npz"
        save_classifier(path, clf)
        data = dict(np.load(path))
        data["format_version"] = np.int64(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_classifier(path)
