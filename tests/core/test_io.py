"""Tests for model persistence."""

import numpy as np
import pytest

from repro.core.encoder import Encoder
from repro.core.io import load_classifier, save_classifier
from repro.core.model import HDCClassifier
from repro.datasets.synthetic import make_prototype_classification


@pytest.fixture(scope="module")
def fitted():
    task = make_prototype_classification(
        "toy", num_features=20, num_classes=3, num_train=150, num_test=60,
        seed=14,
    )
    encoder = Encoder(num_features=20, dim=512, levels=16, seed=5)
    clf = HDCClassifier(encoder, num_classes=3, epochs=1, seed=2).fit(
        task.train_x, task.train_y
    )
    return task, clf


class TestSaveLoad:
    def test_roundtrip_predictions_identical(self, fitted, tmp_path):
        task, clf = fitted
        path = tmp_path / "model.npz"
        save_classifier(path, clf)
        loaded = load_classifier(path)
        assert (loaded.predict(task.test_x) == clf.predict(task.test_x)).all()

    def test_roundtrip_model_bits_identical(self, fitted, tmp_path):
        _, clf = fitted
        path = tmp_path / "model.npz"
        save_classifier(path, clf)
        loaded = load_classifier(path)
        assert (loaded.model.class_hv == clf.model.class_hv).all()
        assert loaded.model.bits == clf.model.bits

    def test_encoder_regenerated_identically(self, fitted, tmp_path):
        task, clf = fitted
        path = tmp_path / "model.npz"
        save_classifier(path, clf)
        loaded = load_classifier(path)
        x = task.test_x[:3]
        assert (
            loaded.encoder.encode_batch(x) == clf.encoder.encode_batch(x)
        ).all()

    def test_hyperparameters_preserved(self, fitted, tmp_path):
        _, clf = fitted
        path = tmp_path / "model.npz"
        save_classifier(path, clf)
        loaded = load_classifier(path)
        assert loaded.num_classes == clf.num_classes
        assert loaded.epochs == clf.epochs
        assert loaded.encoder.levels == clf.encoder.levels

    def test_unfitted_rejected(self, tmp_path):
        encoder = Encoder(num_features=4, dim=64, seed=0)
        clf = HDCClassifier(encoder, num_classes=2)
        with pytest.raises(ValueError, match="not fitted"):
            save_classifier(tmp_path / "m.npz", clf)

    def test_version_check(self, fitted, tmp_path):
        _, clf = fitted
        path = tmp_path / "model.npz"
        save_classifier(path, clf)
        data = dict(np.load(path))
        data["format_version"] = np.int64(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_classifier(path)


class TestEncodeBlockBytesPersistence:
    """Regression: v1 silently dropped ``Encoder.encode_block_bytes``."""

    def test_explicit_budget_round_trips(self, tmp_path):
        encoder = Encoder(num_features=8, dim=256, levels=8, seed=3,
                          encode_block_bytes=12_345)
        clf = HDCClassifier(encoder, num_classes=2, epochs=0).fit(
            np.random.default_rng(0).random((20, 8)),
            np.random.default_rng(1).integers(0, 2, 20),
        )
        path = tmp_path / "m.npz"
        save_classifier(path, clf)
        loaded = load_classifier(path)
        assert loaded.encoder.encode_block_bytes == 12_345
        assert loaded.encoder.block_bytes() == 12_345

    def test_default_budget_round_trips_as_none(self, fitted, tmp_path):
        _, clf = fitted
        assert clf.encoder.encode_block_bytes is None
        path = tmp_path / "m.npz"
        save_classifier(path, clf)
        assert load_classifier(path).encoder.encode_block_bytes is None

    def test_v1_file_loads_with_documented_default(self, fitted, tmp_path):
        _, clf = fitted
        path = tmp_path / "m.npz"
        save_classifier(path, clf)
        data = dict(np.load(path))
        # Rewrite the artefact as a v1 file: no block-bytes field.
        data["format_version"] = np.int64(1)
        del data["encode_block_bytes"]
        np.savez_compressed(path, **data)
        loaded = load_classifier(path)
        assert loaded.encoder.encode_block_bytes is None
        assert (loaded.model.class_hv == clf.model.class_hv).all()


class TestLoadedFittedStateInvariants:
    """Loading routes through HDCClassifier.from_model, not attribute
    assignment — a loaded model starts at packed-cache version 0 by
    contract and serves packed predictions immediately."""

    def test_loaded_model_version_zero(self, fitted, tmp_path):
        _, clf = fitted
        path = tmp_path / "m.npz"
        save_classifier(path, clf)
        loaded = load_classifier(path)
        assert loaded.model.version == 0

    def test_loaded_classifier_serves_packed_predictions(self, fitted,
                                                         tmp_path):
        task, clf = fitted
        path = tmp_path / "m.npz"
        save_classifier(path, clf)
        loaded = load_classifier(path)
        packed = loaded.encoder.encode_packed(task.test_x)
        # Packed ingest straight after load: exercises the packed cache
        # from version 0 and must match the original's predictions.
        assert (loaded.model.predict(packed) == clf.predict(task.test_x)).all()
        assert loaded.model.packed().version == 0

    def test_from_model_rejects_dim_mismatch(self, fitted):
        _, clf = fitted
        bad_encoder = Encoder(num_features=20, dim=clf.encoder.dim * 2,
                              levels=16, seed=5)
        with pytest.raises(ValueError, match="dim"):
            HDCClassifier.from_model(bad_encoder, clf.model)

    def test_num_classes_consistency_check(self, fitted, tmp_path):
        _, clf = fitted
        path = tmp_path / "m.npz"
        save_classifier(path, clf)
        data = dict(np.load(path))
        data["num_classes"] = np.int64(7)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="num_classes"):
            load_classifier(path)
