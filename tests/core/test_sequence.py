"""Tests for the temporal n-gram sequence encoder."""

import numpy as np
import pytest

from repro.core.encoder import Encoder
from repro.core.hypervector import hamming_distance, random_hypervectors
from repro.core.model import HDCClassifier
from repro.core.sequence import SequenceEncoder, ngram_encode


class TestNgramEncode:
    def test_output_shape(self):
        rng = np.random.default_rng(0)
        steps = random_hypervectors(10, 256, rng)
        out = ngram_encode(steps, 3)
        assert out.shape == (256,)
        assert set(np.unique(out)) <= {0, 1}

    def test_order_sensitivity(self):
        """Same steps, different order => quasi-orthogonal encodings."""
        rng = np.random.default_rng(1)
        steps = random_hypervectors(6, 8_192, rng)
        fwd = ngram_encode(steps, 3)
        rev = ngram_encode(steps[::-1].copy(), 3)
        assert abs(hamming_distance(fwd, rev) - 4_096) < 500

    def test_n1_is_orderless(self):
        rng = np.random.default_rng(2)
        steps = random_hypervectors(5, 1_024, rng)
        fwd = ngram_encode(steps, 1)
        rev = ngram_encode(steps[::-1].copy(), 1)
        assert (fwd == rev).all()

    def test_similar_sequences_close(self):
        """Sharing most windows keeps encodings similar."""
        rng = np.random.default_rng(3)
        steps = random_hypervectors(12, 8_192, rng)
        mutated = steps.copy()
        mutated[-1] = random_hypervectors(1, 8_192, rng)[0]
        d_related = hamming_distance(
            ngram_encode(steps, 3), ngram_encode(mutated, 3)
        )
        other = random_hypervectors(12, 8_192, rng)
        d_unrelated = hamming_distance(
            ngram_encode(steps, 3), ngram_encode(other, 3)
        )
        assert d_related < d_unrelated

    def test_deterministic(self):
        rng = np.random.default_rng(4)
        steps = random_hypervectors(7, 512, rng)
        assert (ngram_encode(steps, 2) == ngram_encode(steps, 2)).all()

    def test_too_short_sequence(self):
        rng = np.random.default_rng(5)
        steps = random_hypervectors(2, 128, rng)
        with pytest.raises(ValueError, match="shorter than"):
            ngram_encode(steps, 3)

    def test_bad_n(self):
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError, match="n must be"):
            ngram_encode(random_hypervectors(4, 64, rng), 0)

    def test_needs_2d(self):
        with pytest.raises(ValueError, match="T, D"):
            ngram_encode(np.zeros(64, dtype=np.uint8), 2)


def make_sequence_task(num_classes=3, per_class=30, cycles=2, features=6,
                       seed=0):
    """Synthetic temporal task: each class is a characteristic *ordering*
    of the same motif set, repeated for whole cycles — every class sees
    the identical motif multiset, so order-blind encodings cannot
    separate it and only the ordering carries label information."""
    rng = np.random.default_rng(seed)
    num_motifs = num_classes + 2
    motifs = rng.random((num_motifs, features))
    orders = [rng.permutation(num_motifs) for _ in range(num_classes)]
    sequences, labels = [], []
    for c in range(num_classes):
        for _ in range(per_class):
            picks = np.tile(orders[c], cycles)
            seq = motifs[picks] + rng.normal(0, 0.02, (len(picks), features))
            sequences.append(np.clip(seq, 0, 1))
            labels.append(c)
    return sequences, np.array(labels)


class TestSequenceEncoder:
    def test_classification_with_order_information(self):
        sequences, labels = make_sequence_task(seed=7)
        encoder = SequenceEncoder(num_features=6, dim=4_096, n=3, seed=1)
        encoded = encoder.encode_batch(sequences)
        clf = HDCClassifier(
            encoder.step_encoder, num_classes=3, epochs=0
        ).fit_encoded(encoded, labels)
        acc = clf.score_encoded(encoded, labels)
        assert acc > 0.9

    def test_order_information_required(self):
        """The same task with n=1 (orderless) is near chance — proving
        the n-gram carries the order signal."""
        sequences, labels = make_sequence_task(seed=8)
        ordered = SequenceEncoder(num_features=6, dim=4_096, n=3, seed=1)
        orderless = SequenceEncoder(num_features=6, dim=4_096, n=1, seed=1)
        acc = {}
        for name, enc in (("n3", ordered), ("n1", orderless)):
            encoded = enc.encode_batch(sequences)
            clf = HDCClassifier(
                enc.step_encoder, num_classes=3, epochs=0
            ).fit_encoded(encoded, labels)
            acc[name] = clf.score_encoded(encoded, labels)
        assert acc["n3"] > acc["n1"] + 0.2

    def test_variable_lengths(self):
        encoder = SequenceEncoder(num_features=4, dim=512, n=2, seed=2)
        rng = np.random.default_rng(9)
        sequences = [rng.random((t, 4)) for t in (5, 9, 3)]
        out = encoder.encode_batch(sequences)
        assert out.shape == (3, 512)

    def test_empty_batch_rejected(self):
        encoder = SequenceEncoder(num_features=4, dim=256, n=2, seed=0)
        with pytest.raises(ValueError, match="at least one"):
            encoder.encode_batch([])

    def test_shape_validation(self):
        encoder = SequenceEncoder(num_features=4, dim=256, n=2, seed=0)
        with pytest.raises(ValueError, match="T, features"):
            encoder.encode_sequence(np.zeros(4))

    def test_bad_n(self):
        with pytest.raises(ValueError, match="n must be"):
            SequenceEncoder(num_features=4, dim=256, n=0)
