"""Unit + property tests for the binary hypervector algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypervector import (
    as_chunks,
    bind,
    binarize_counts,
    bundle,
    bundle_counts,
    flip_bits,
    from_chunks,
    hamming_distance,
    hamming_similarity,
    level_hypervectors,
    normalized_hamming_similarity,
    permute,
    random_hypervector,
    random_hypervectors,
    validate_hypervector,
)


@st.composite
def hv_pair(draw, max_dim=256):
    dim = draw(st.integers(min_value=1, max_value=max_dim))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, 2, dim, dtype=np.uint8),
        rng.integers(0, 2, dim, dtype=np.uint8),
    )


class TestRandomHypervectors:
    def test_shape_and_dtype(self):
        rng = np.random.default_rng(0)
        hv = random_hypervector(100, rng)
        assert hv.shape == (100,)
        assert hv.dtype == np.uint8
        assert set(np.unique(hv)) <= {0, 1}

    def test_batch_shape(self):
        rng = np.random.default_rng(0)
        hvs = random_hypervectors(5, 64, rng)
        assert hvs.shape == (5, 64)

    def test_quasi_orthogonality(self):
        """Any two random hypervectors sit near D/2 apart."""
        rng = np.random.default_rng(1)
        a = random_hypervector(10_000, rng)
        b = random_hypervector(10_000, rng)
        assert abs(hamming_distance(a, b) - 5_000) < 300

    def test_determinism(self):
        a = random_hypervector(64, np.random.default_rng(42))
        b = random_hypervector(64, np.random.default_rng(42))
        assert (a == b).all()

    @pytest.mark.parametrize("dim", [0, -3])
    def test_bad_dim_rejected(self, dim):
        with pytest.raises(ValueError):
            random_hypervector(dim, np.random.default_rng(0))

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError):
            random_hypervectors(0, 10, np.random.default_rng(0))


class TestValidate:
    def test_accepts_valid(self):
        validate_hypervector(np.array([0, 1, 1], dtype=np.uint8))

    def test_rejects_non_array(self):
        with pytest.raises(ValueError, match="numpy array"):
            validate_hypervector([0, 1])

    def test_rejects_float(self):
        with pytest.raises(ValueError, match="integer or bool"):
            validate_hypervector(np.array([0.0, 1.0]))

    def test_rejects_values(self):
        with pytest.raises(ValueError, match="binary"):
            validate_hypervector(np.array([0, 2], dtype=np.uint8))

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="1-D or 2-D"):
            validate_hypervector(np.zeros((2, 2, 2), dtype=np.uint8))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            validate_hypervector(np.zeros(0, dtype=np.uint8))


class TestBind:
    @given(hv_pair())
    def test_self_inverse(self, pair):
        a, b = pair
        assert (bind(bind(a, b), b) == a).all()

    @given(hv_pair())
    def test_commutative(self, pair):
        a, b = pair
        assert (bind(a, b) == bind(b, a)).all()

    @given(hv_pair())
    def test_distance_preserving(self, pair):
        """d(a^c, b^c) == d(a, b) for any c."""
        a, b = pair
        rng = np.random.default_rng(7)
        c = rng.integers(0, 2, a.shape[0], dtype=np.uint8)
        assert hamming_distance(bind(a, c), bind(b, c)) == hamming_distance(a, b)

    def test_identity(self):
        a = np.array([1, 0, 1], dtype=np.uint8)
        assert (bind(a, np.zeros(3, dtype=np.uint8)) == a).all()

    def test_dim_mismatch(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            bind(np.zeros(3, dtype=np.uint8), np.zeros(4, dtype=np.uint8))


class TestHamming:
    @given(hv_pair())
    def test_symmetry(self, pair):
        a, b = pair
        assert hamming_distance(a, b) == hamming_distance(b, a)

    @given(hv_pair())
    def test_identity_of_indiscernibles(self, pair):
        a, _ = pair
        assert hamming_distance(a, a) == 0

    @given(hv_pair())
    def test_triangle_inequality(self, pair):
        a, b = pair
        rng = np.random.default_rng(11)
        c = rng.integers(0, 2, a.shape[0], dtype=np.uint8)
        assert hamming_distance(a, c) <= (
            hamming_distance(a, b) + hamming_distance(b, c)
        )

    @given(hv_pair())
    def test_similarity_complement(self, pair):
        a, b = pair
        dim = a.shape[0]
        assert hamming_similarity(a, b) == dim - hamming_distance(a, b)

    def test_broadcast_over_model(self):
        rng = np.random.default_rng(3)
        q = rng.integers(0, 2, 32, dtype=np.uint8)
        model = rng.integers(0, 2, (5, 32), dtype=np.uint8)
        d = hamming_distance(q, model)
        assert d.shape == (5,)
        for i in range(5):
            assert d[i] == hamming_distance(q, model[i])

    def test_normalized_range(self):
        a = np.zeros(10, dtype=np.uint8)
        b = np.ones(10, dtype=np.uint8)
        assert normalized_hamming_similarity(a, a) == 1.0
        assert normalized_hamming_similarity(a, b) == 0.0


class TestBundle:
    def test_majority(self):
        hvs = np.array(
            [[1, 1, 0, 0], [1, 0, 0, 0], [1, 1, 1, 0]], dtype=np.uint8
        )
        out = bundle(hvs)
        assert (out == np.array([1, 1, 0, 0], dtype=np.uint8)).all()

    def test_similar_to_all_inputs(self):
        """Bundle of few random vectors stays < D/2 from each input."""
        rng = np.random.default_rng(4)
        hvs = random_hypervectors(5, 2_000, rng)
        out = bundle(hvs, rng)
        for hv in hvs:
            assert hamming_distance(out, hv) < 1_000

    def test_tie_break_deterministic_without_rng(self):
        hvs = np.array([[1, 0], [0, 1]], dtype=np.uint8)
        assert (bundle(hvs) == 0).all()

    def test_tie_break_random_with_rng(self):
        hvs = np.array([[1], [0]], dtype=np.uint8)
        seen = {int(bundle(hvs, np.random.default_rng(s))[0]) for s in range(40)}
        assert seen == {0, 1}

    def test_counts_roundtrip(self):
        rng = np.random.default_rng(5)
        hvs = random_hypervectors(9, 50, rng)
        counts = bundle_counts(hvs)
        assert (binarize_counts(counts, 9) == bundle(hvs)).all()

    def test_counts_requires_batch(self):
        with pytest.raises(ValueError, match="2-D"):
            bundle_counts(np.zeros(4, dtype=np.uint8))

    def test_binarize_bad_total(self):
        with pytest.raises(ValueError, match="total"):
            binarize_counts(np.zeros(4, dtype=np.int64), 0)


class TestLevelHypervectors:
    def test_shape(self):
        lv = level_hypervectors(8, 512, np.random.default_rng(0))
        assert lv.shape == (8, 512)

    def test_distance_monotone_in_level_gap(self):
        lv = level_hypervectors(16, 4_096, np.random.default_rng(1))
        d_adjacent = hamming_distance(lv[0], lv[1])
        d_mid = hamming_distance(lv[0], lv[8])
        d_far = hamming_distance(lv[0], lv[15])
        assert d_adjacent < d_mid < d_far

    def test_extremes_quasi_orthogonal(self):
        lv = level_hypervectors(16, 10_000, np.random.default_rng(2))
        assert abs(hamming_distance(lv[0], lv[15]) - 5_000) < 500

    def test_exact_flip_budget(self):
        """Total flips from first to last level equal ~dim/2 exactly."""
        lv = level_hypervectors(5, 1_000, np.random.default_rng(3))
        assert hamming_distance(lv[0], lv[4]) == 500

    def test_too_few_levels(self):
        with pytest.raises(ValueError, match="levels"):
            level_hypervectors(1, 100, np.random.default_rng(0))

    def test_dim_smaller_than_levels(self):
        with pytest.raises(ValueError, match="dim"):
            level_hypervectors(10, 5, np.random.default_rng(0))


class TestPermute:
    @given(hv_pair())
    def test_inverse(self, pair):
        a, _ = pair
        assert (permute(permute(a, 3), -3) == a).all()

    @given(hv_pair())
    def test_distance_preserving(self, pair):
        a, b = pair
        assert hamming_distance(permute(a, 5), permute(b, 5)) == (
            hamming_distance(a, b)
        )

    def test_quasi_orthogonal_to_input(self):
        rng = np.random.default_rng(9)
        a = random_hypervector(10_000, rng)
        assert abs(hamming_distance(a, permute(a)) - 5_000) < 300

    def test_noncommutative_with_bind(self):
        """permute(bind(a,b)) != bind(permute(a), b) — order is encoded."""
        rng = np.random.default_rng(10)
        a = random_hypervector(512, rng)
        b = random_hypervector(512, rng)
        assert (permute(bind(a, b)) != bind(permute(a), b)).any()

    def test_batch_axis(self):
        hv = np.arange(6, dtype=np.uint8).reshape(2, 3) % 2
        out = permute(hv, 1)
        assert out.shape == (2, 3)
        assert (out[0] == np.roll(hv[0], 1)).all()


class TestFlipBits:
    def test_flips_exactly(self):
        hv = np.zeros(10, dtype=np.uint8)
        out = flip_bits(hv, [0, 3, 9])
        assert out.sum() == 3
        assert out[0] == out[3] == out[9] == 1
        assert hv.sum() == 0  # original untouched

    def test_double_flip_restores(self):
        rng = np.random.default_rng(6)
        hv = rng.integers(0, 2, 50, dtype=np.uint8)
        out = flip_bits(flip_bits(hv, [7]), [7])
        assert (out == hv).all()

    def test_flat_indexing_on_matrix(self):
        hv = np.zeros((2, 4), dtype=np.uint8)
        out = flip_bits(hv, [5])  # row 1, col 1
        assert out[1, 1] == 1

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            flip_bits(np.zeros(4, dtype=np.uint8), [4])


class TestChunks:
    def test_roundtrip(self):
        rng = np.random.default_rng(8)
        hv = rng.integers(0, 2, 24, dtype=np.uint8)
        assert (from_chunks(as_chunks(hv, 4)) == hv).all()

    def test_view_writes_propagate(self):
        hv = np.zeros(12, dtype=np.uint8)
        chunks = as_chunks(hv, 3)
        chunks[1, :] = 1
        assert hv[4:8].sum() == 4

    def test_batch_chunking(self):
        hv = np.zeros((5, 12), dtype=np.uint8)
        assert as_chunks(hv, 4).shape == (5, 4, 3)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            as_chunks(np.zeros(10, dtype=np.uint8), 3)

    def test_from_chunks_needs_2d(self):
        with pytest.raises(ValueError):
            from_chunks(np.zeros(6, dtype=np.uint8))
