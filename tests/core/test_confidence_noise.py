"""Tests for the noise-normalised confidence (the 2-class path)."""

import numpy as np
import pytest

from repro.core.confidence import confident_mask, prediction_confidence
from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier
from repro.datasets.synthetic import make_prototype_classification


class TestNoiseMethod:
    def test_discriminates_at_two_classes(self):
        """The whole point: margin/softmax are constant at k=2, the
        noise method is not."""
        wide = np.array([[100.0, 0.0]])
        narrow = np.array([[51.0, 49.0]])
        _, conf_margin_wide = prediction_confidence(wide, method="margin")
        _, conf_margin_narrow = prediction_confidence(narrow, method="margin")
        assert conf_margin_wide[0] == pytest.approx(conf_margin_narrow[0])

        _, conf_wide = prediction_confidence(wide, method="noise", scale=10.0)
        _, conf_narrow = prediction_confidence(narrow, method="noise",
                                               scale=10.0)
        assert conf_wide[0] > conf_narrow[0]

    def test_monotone_in_gap(self):
        sims = np.array([[10.0, 0.0], [5.0, 0.0], [1.0, 0.0]])
        _, conf = prediction_confidence(sims, method="noise", scale=2.0)
        assert conf[0] > conf[1] > conf[2]

    def test_range(self):
        rng = np.random.default_rng(0)
        sims = rng.normal(size=(50, 2))
        _, conf = prediction_confidence(sims, method="noise", scale=1.0)
        assert (conf > 0.5).all() or np.allclose(conf[conf <= 0.5], 0.5)
        assert (conf <= 1.0).all()

    def test_scale_required(self):
        with pytest.raises(ValueError, match="scale"):
            prediction_confidence(np.zeros((1, 2)), method="noise")
        with pytest.raises(ValueError, match="scale"):
            prediction_confidence(np.zeros((1, 2)), method="noise", scale=0.0)

    def test_works_for_many_classes_too(self):
        sims = np.array([[5.0, 1.0, 0.0, 2.0]])
        preds, conf = prediction_confidence(sims, method="noise", scale=1.0)
        assert preds[0] == 0
        assert 0.5 < conf[0] <= 1.0


class TestConfidentMaskForwardsScale:
    def test_noise_method_usable_at_k2(self):
        """Regression: confident_mask used to drop ``scale``, so the only
        usable method at k=2 always raised through the public API."""
        sims = np.array([[10.0, 0.0], [5.1, 4.9]])
        preds, conf, mask = confident_mask(
            sims, threshold=0.7, method="noise", scale=2.0
        )
        assert preds.tolist() == [0, 0]
        # Wide margin trusted, razor-thin margin not: the discrimination
        # the z-score methods cannot provide with two classes.
        assert mask.tolist() == [True, False]
        ref_preds, ref_conf = prediction_confidence(
            sims, method="noise", scale=2.0
        )
        assert (preds == ref_preds).all()
        assert conf == pytest.approx(ref_conf)

    def test_noise_method_still_requires_scale(self):
        with pytest.raises(ValueError, match="scale"):
            confident_mask(np.zeros((1, 2)), threshold=0.5, method="noise")

    def test_scale_ignored_by_other_methods(self):
        sims = np.array([[3.0, 1.0, 0.0]])
        a = confident_mask(sims, threshold=0.5, method="margin")
        b = confident_mask(sims, threshold=0.5, method="margin", scale=123.0)
        for x, y in zip(a, b):
            assert (x == y).all()


class TestTwoClassRecoveryGate:
    def test_gate_discriminates_on_real_two_class_task(self):
        """On a FACE-like task the recovery gate must separate confident
        core queries from ambiguous boundary queries — the property the
        z-score methods cannot provide at k=2."""
        task = make_prototype_classification(
            "face-like", num_features=30, num_classes=2, num_train=200,
            num_test=200, boundary_fraction=0.5,
            boundary_depth=(0.40, 0.50), seed=25,
        )
        encoder = Encoder(num_features=30, dim=4_000, seed=9)
        clf = HDCClassifier(encoder, num_classes=2, epochs=0).fit(
            task.train_x, task.train_y
        )
        queries = encoder.encode_batch(task.test_x)
        sims = clf.model.similarities(queries)
        scale = float(np.sqrt(clf.model.dim / 2.0))
        _, conf = prediction_confidence(sims, method="noise", scale=scale)
        # The confidence distribution must actually spread (not constant).
        assert conf.std() > 0.01
        # And high-confidence predictions are more accurate than
        # low-confidence ones.
        preds = clf.model.predict(queries)
        correct = preds == np.asarray(task.test_y)
        high = conf >= np.median(conf)
        assert correct[high].mean() >= correct[~high].mean()
