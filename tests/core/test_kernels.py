"""Kernel-backend contract tests.

Every registered backend must produce a distance table bit-identical to
:class:`ReferenceBackend` — the unpacked uint8 oracle — over random
shapes, including operands with zeroed pad bits (the word-shard case).
Accelerator backends (CuPy / torch) skip cleanly when their runtime is
absent and are held to the same oracle when present.
"""

import os

import numpy as np
import pytest

from repro.core import kernels, packed
from repro.core.packed import pack

RNG = np.random.default_rng(71)


def random_words(rows: int, words: int) -> np.ndarray:
    if words == 0:
        return np.zeros((rows, 0), dtype=np.uint64)
    raw = RNG.integers(0, 2, (rows, words * 64), dtype=np.uint8)
    return pack(raw).words


def padded_words(rows: int, dim: int) -> np.ndarray:
    """Packed words of a dim that is NOT word-aligned: pad bits zero."""
    raw = RNG.integers(0, 2, (rows, dim), dtype=np.uint8)
    return pack(raw).words


CPU_BACKENDS = ["numpy", "native"]
SHAPES = [(1, 1, 1), (4, 26, 157), (33, 7, 3), (256, 2, 16), (3, 64, 32)]


def get_or_skip(name: str) -> kernels.KernelBackend:
    if not kernels._BACKEND_CLASSES[name].available():
        pytest.skip(f"backend {name!r} unavailable in this environment")
    return kernels.get_backend(name)


class TestEquivalence:
    @pytest.mark.parametrize("name", CPU_BACKENDS)
    @pytest.mark.parametrize("b,k,w", SHAPES)
    def test_matches_reference_oracle(self, name, b, k, w):
        backend = get_or_skip(name)
        oracle = kernels.get_backend("reference")
        queries, model = random_words(b, w), random_words(k, w)
        got = backend.distance_table(queries, model)
        assert got.dtype == np.int64
        assert got.shape == (b, k)
        assert (got == oracle.distance_table(queries, model)).all()

    @pytest.mark.parametrize("name", CPU_BACKENDS)
    def test_padded_dims_are_exact(self, name):
        """Non-word-aligned dims: pad bits are zero in both operands and
        never perturb the table."""
        backend = get_or_skip(name)
        oracle = kernels.get_backend("reference")
        for dim in (1, 63, 65, 1000):
            queries, model = padded_words(9, dim), padded_words(5, dim)
            assert (
                backend.distance_table(queries, model)
                == oracle.distance_table(queries, model)
            ).all()

    @pytest.mark.parametrize("name", CPU_BACKENDS)
    def test_empty_operands(self, name):
        backend = get_or_skip(name)
        assert backend.distance_table(
            random_words(0, 5), random_words(3, 5)
        ).shape == (0, 3)
        zero_w = backend.distance_table(
            np.zeros((2, 0), np.uint64), np.zeros((3, 0), np.uint64)
        )
        assert zero_w.shape == (2, 3) and not zero_w.any()

    def test_numpy_lut_fallback_matches(self, monkeypatch):
        """The NumPy backend under the 16-bit LUT popcount (NumPy 1.x
        compatibility / REPRO_FORCE_POP16_LUT) is bit-identical."""
        backend = kernels.get_backend("numpy")
        queries, model = random_words(40, 19), random_words(11, 19)
        expected = backend.distance_table(queries, model)
        monkeypatch.setattr(packed, "_HAS_BITWISE_COUNT", False)
        assert (backend.distance_table(queries, model) == expected).all()

    @pytest.mark.parametrize("name", ["cupy", "torch"])
    def test_accelerators_skip_or_match(self, name):
        backend = get_or_skip(name)
        oracle = kernels.get_backend("reference")
        queries, model = random_words(300, 157), random_words(26, 157)
        assert (
            backend.distance_table(queries, model)
            == oracle.distance_table(queries, model)
        ).all()


class TestValidation:
    def test_dtype_rejected(self):
        backend = kernels.get_backend("numpy")
        with pytest.raises(ValueError, match="uint64"):
            backend.distance_table(
                np.zeros((2, 3), np.int64), np.zeros((2, 3), np.uint64)
            )

    def test_shape_rejected(self):
        backend = kernels.get_backend("numpy")
        with pytest.raises(ValueError, match="2-D"):
            backend.distance_table(
                np.zeros(3, np.uint64), np.zeros((2, 3), np.uint64)
            )

    def test_word_mismatch_rejected(self):
        backend = kernels.get_backend("numpy")
        with pytest.raises(ValueError, match="word-count"):
            backend.distance_table(
                np.zeros((2, 3), np.uint64), np.zeros((2, 4), np.uint64)
            )


class TestRegistry:
    def test_available_backends_covers_registry(self):
        avail = kernels.available_backends()
        assert set(avail) == {"numpy", "reference", "native", "cupy",
                              "torch"}
        assert avail["numpy"] and avail["reference"]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.get_backend("tpu")

    def test_unavailable_backend_rejected(self):
        if kernels.CupyBackend.available():  # pragma: no cover - GPU hosts
            pytest.skip("cupy present here")
        with pytest.raises(RuntimeError, match="not available"):
            kernels.get_backend("cupy")

    def test_instances_are_shared(self):
        assert kernels.get_backend("numpy") is kernels.get_backend("numpy")

    def test_set_kernel_backend_by_name_and_instance(self):
        try:
            kernels.set_kernel_backend("reference")
            assert kernels.active_backend().name == "reference"
            instance = kernels.NumpyPackedBackend()
            kernels.set_kernel_backend(instance)
            assert kernels.active_backend() is instance
        finally:
            kernels.set_kernel_backend(None)

    def test_set_kernel_backend_rejects_garbage(self):
        with pytest.raises(TypeError):
            kernels.set_kernel_backend(42)

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setattr(kernels, "_ACTIVE", None)
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "reference")
        assert kernels.active_backend().name == "reference"

    def test_default_prefers_native_when_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_FORCE_POP16_LUT", raising=False)
        expected = (
            "native" if kernels.NativeCpuBackend.available() else "numpy"
        )
        assert kernels._default_backend_name() == expected

    def test_lut_flag_pins_default_to_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_POP16_LUT", "1")
        assert kernels._default_backend_name() == "numpy"

    def test_use_kernel_backend_restores(self):
        before = kernels.active_backend().name
        with kernels.use_kernel_backend("reference") as backend:
            assert backend.name == "reference"
            assert kernels.active_backend() is backend
        assert kernels.active_backend().name == before

    def test_distances_dispatch_through_active_backend(self):
        """PackedModel.distances honours the backend selection."""
        from repro.core.packed import PackedModel

        words = random_words(4, 6)
        model = PackedModel(words=words, dim=6 * 64, version=1)
        queries = random_words(3, 6)
        with kernels.use_kernel_backend("reference"):
            via_ref = model.distances(queries)
        assert (via_ref == model.distances(queries)).all()


class TestNativeBackend:
    def test_native_skips_cleanly_when_toolchain_missing(self):
        # available() never raises; it reports the compile outcome.
        assert kernels.NativeCpuBackend.available() in (True, False)

    def test_best_accelerator_excludes_cpu_backends(self):
        best = kernels.best_accelerator_backend()
        if best is not None:  # pragma: no cover - GPU hosts
            assert best.name in ("cupy", "torch")


class TestRoofline:
    def test_roofline_validation_record(self):
        record = kernels.roofline_validation(
            kernels.get_backend("numpy"), dim=512, num_classes=6,
            batch=64, repeats=1,
        )
        assert record["backend"] == "numpy"
        assert record["measured_queries_per_s"] > 0
        assert record["roofline_queries_per_s"] > 0
        assert record["measured_over_roofline"] == pytest.approx(
            record["measured_queries_per_s"]
            / record["roofline_queries_per_s"]
        )


@pytest.mark.skipif(
    not os.environ.get("REPRO_FORCE_POP16_LUT"),
    reason="LUT-forcing env leg only",
)
def test_forced_lut_env_is_in_effect():
    """Under REPRO_FORCE_POP16_LUT=1 the import-time switch is off and
    the default backend is the NumPy/LUT path (the CI matrix leg)."""
    assert packed._HAS_BITWISE_COUNT is False
    assert kernels._default_backend_name() == "numpy"
