"""Tests for probabilistic substitution and the recovery loop."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier, HDCModel
from repro.core.packed import float_backend, pack
from repro.core.recovery import (
    RecoveryConfig,
    RecoveryStats,
    RobustHDRecovery,
    probabilistic_substitution,
    recover_block,
    recover_step,
)
from repro.datasets.synthetic import make_prototype_classification
from repro.faults.api import attack


@pytest.fixture(scope="module")
def fitted():
    task = make_prototype_classification(
        "toy", num_features=60, num_classes=5, num_train=300, num_test=200,
        boundary_fraction=0.4, boundary_depth=(0.25, 0.45), seed=7,
    )
    encoder = Encoder(num_features=60, dim=2_000, seed=3)
    clf = HDCClassifier(encoder, num_classes=5, epochs=0).fit(
        task.train_x, task.train_y
    )
    encoded_test = encoder.encode_batch(task.test_x)
    return clf.model, encoded_test, np.asarray(task.test_y)


class TestRecoveryConfig:
    def test_defaults_valid(self):
        RecoveryConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(confidence_threshold=1.5),
            dict(substitution_rate=0.0),
            dict(substitution_rate=1.5),
            dict(num_chunks=0),
            dict(detection_margin=-0.1),
            dict(temperature=0.0),
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            RecoveryConfig(**kwargs)


class TestProbabilisticSubstitution:
    def test_rate_one_copies_everything(self):
        rng = np.random.default_rng(0)
        target = np.zeros(100, dtype=np.uint8)
        source = np.ones(100, dtype=np.uint8)
        changed = probabilistic_substitution(target, source, 1.0, rng)
        assert changed == 100
        assert (target == source).all()

    def test_in_place(self):
        rng = np.random.default_rng(1)
        target = np.zeros(50, dtype=np.uint8)
        view = target[10:30]
        probabilistic_substitution(view, np.ones(20, dtype=np.uint8), 1.0, rng)
        assert target[10:30].sum() == 20
        assert target[:10].sum() == 0

    def test_equal_vectors_change_nothing(self):
        rng = np.random.default_rng(2)
        target = rng.integers(0, 2, 100, dtype=np.uint8)
        changed = probabilistic_substitution(target, target.copy(), 0.5, rng)
        assert changed == 0

    @given(st.floats(min_value=0.05, max_value=0.95))
    def test_expected_change_rate(self, rate):
        rng = np.random.default_rng(3)
        target = np.zeros(4_000, dtype=np.uint8)
        source = np.ones(4_000, dtype=np.uint8)
        changed = probabilistic_substitution(target, source, rate, rng)
        assert abs(changed / 4_000 - rate) < 0.1

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            probabilistic_substitution(
                np.zeros(3, dtype=np.uint8), np.zeros(4, dtype=np.uint8),
                0.5, np.random.default_rng(0),
            )

    def test_bad_rate(self):
        with pytest.raises(ValueError, match="rate"):
            probabilistic_substitution(
                np.zeros(3, dtype=np.uint8), np.zeros(3, dtype=np.uint8),
                0.0, np.random.default_rng(0),
            )


class TestRecoverStep:
    def test_returns_prediction(self, fitted):
        model, queries, labels = fitted
        config = RecoveryConfig(num_chunks=20)
        pred = recover_step(
            model.copy(), queries[0], config, np.random.default_rng(0)
        )
        assert 0 <= pred < model.num_classes

    def test_untrusted_query_never_writes(self, fitted):
        model, queries, _ = fitted
        work = model.copy()
        config = RecoveryConfig(confidence_threshold=1.0, num_chunks=20)
        stats = RecoveryStats()
        for q in queries[:20]:
            recover_step(work, q, config, np.random.default_rng(0), stats)
        assert (work.class_hv == model.class_hv).all()
        assert stats.queries_trusted == 0
        assert stats.queries_seen == 20

    def test_clean_model_barely_touched(self, fitted):
        """On an unattacked model the margin gate keeps repair volume tiny."""
        model, queries, _ = fitted
        work = model.copy()
        config = RecoveryConfig(num_chunks=20)
        rng = np.random.default_rng(1)
        stats = RecoveryStats()
        for q in queries[:50]:
            recover_step(work, q, config, rng, stats)
        changed = np.mean(work.class_hv != model.class_hv)
        assert changed < 0.02

    def test_multibit_model_rejected(self, fitted):
        model, queries, _ = fitted
        bad = HDCModel(class_hv=model.class_hv.copy(), bits=2)
        # valid levels for 2-bit, but recovery is binary-only
        with pytest.raises(ValueError, match="1-bit"):
            recover_step(
                bad, queries[0], RecoveryConfig(), np.random.default_rng(0)
            )

    def test_query_shape_validated(self, fitted):
        model, _, _ = fitted
        with pytest.raises(ValueError, match="1-D vector"):
            recover_step(
                model.copy(), np.zeros((2, model.dim), dtype=np.uint8),
                RecoveryConfig(), np.random.default_rng(0),
            )

    def test_stats_accumulate(self, fitted):
        model, queries, _ = fitted
        attacked, _ = attack(model, 0.10, "random",
                             np.random.default_rng(2))
        config = RecoveryConfig(confidence_threshold=0.5, num_chunks=20)
        stats = RecoveryStats()
        rng = np.random.default_rng(3)
        for q in queries[:30]:
            recover_step(attacked, q, config, rng, stats)
        assert stats.queries_seen == 30
        assert stats.queries_trusted > 0
        assert stats.chunks_checked == stats.queries_trusted * 20
        assert len(stats.confidence_trace) == 30
        assert 0.0 <= stats.trust_rate <= 1.0


class TestRecoverBlock:
    """Batched recovery must replay the sequential stream exactly."""

    def _attacked(self, fitted, seed=20):
        model, queries, _ = fitted
        return (
            attack(model, 0.10, "random",
                   np.random.default_rng(seed))[0],
            queries,
        )

    def _run(self, model, queries, block_size):
        work = model.copy()
        config = RecoveryConfig(confidence_threshold=0.5, num_chunks=20)
        rng = np.random.default_rng(7)
        stats = RecoveryStats()
        preds = []
        for lo in range(0, queries.shape[0], block_size):
            preds.append(
                recover_block(
                    work, queries[lo : lo + block_size], config, rng, stats
                )
            )
        return work, np.concatenate(preds), stats

    def test_block_size_order_equivalent(self, fitted):
        """Any block size gives the same predictions, model, and stats as
        the one-query-at-a-time stream (identical RNG draw order)."""
        attacked, queries = self._attacked(fitted)
        ref_model, ref_preds, ref_stats = self._run(attacked, queries[:60], 1)
        for block_size in (7, 60):
            work, preds, stats = self._run(attacked, queries[:60], block_size)
            assert (preds == ref_preds).all()
            assert (work.class_hv == ref_model.class_hv).all()
            assert stats.bits_substituted == ref_stats.bits_substituted
            assert stats.chunks_repaired == ref_stats.chunks_repaired
            assert stats.confidence_trace == ref_stats.confidence_trace

    def test_packed_and_float_backends_identical(self, fitted):
        attacked, queries = self._attacked(fitted)
        packed_model, packed_preds, packed_stats = self._run(
            attacked, queries[:60], 16
        )
        with float_backend():
            float_model, float_preds, float_stats = self._run(
                attacked, queries[:60], 16
            )
        assert (packed_preds == float_preds).all()
        assert (packed_model.class_hv == float_model.class_hv).all()
        assert packed_stats.bits_substituted == float_stats.bits_substituted

    def test_recover_step_is_block_of_one(self, fitted):
        attacked, queries = self._attacked(fitted)
        a, b = attacked.copy(), attacked.copy()
        config = RecoveryConfig(confidence_threshold=0.5, num_chunks=20)
        for q in queries[:20]:
            p_step = recover_step(a, q, config, np.random.default_rng(9))
            p_block = recover_block(
                b, q[None, :], config, np.random.default_rng(9)
            )
            assert p_step == p_block[0]
        assert (a.class_hv == b.class_hv).all()

    def test_empty_block(self, fitted):
        model, queries, _ = fitted
        preds = recover_block(
            model.copy(), queries[:0], RecoveryConfig(num_chunks=20),
            np.random.default_rng(0),
        )
        assert preds.shape == (0,)


class TestRobustHDRecovery:
    def test_block_size_equivalence(self, fitted):
        """The streaming wrapper matches itself across block sizes."""
        model, queries, _ = fitted
        attacked, _ = attack(model, 0.10, "random",
                             np.random.default_rng(12))
        outs = []
        for block_size in (1, 32, 256):
            work = attacked.copy()
            rec = RobustHDRecovery(
                work, RecoveryConfig(confidence_threshold=0.5),
                seed=4, block_size=block_size,
            )
            preds = rec.process(queries[:80])
            outs.append((preds, work.class_hv.copy(), rec.stats))
        for preds, class_hv, stats in outs[1:]:
            assert (preds == outs[0][0]).all()
            assert (class_hv == outs[0][1]).all()
            assert stats.bits_substituted == outs[0][2].bits_substituted

    def test_bad_block_size(self, fitted):
        model, _, _ = fitted
        with pytest.raises(ValueError, match="block_size"):
            RobustHDRecovery(model.copy(), block_size=0)


    def test_recovery_improves_attacked_model(self, fitted):
        """The paper's core claim at unit scale: online unsupervised
        recovery wins back accuracy lost to a 10% attack."""
        model, queries, labels = fitted
        clean_acc = float(np.mean(model.predict(queries) == labels))
        attacked, _ = attack(model, 0.10, "random",
                             np.random.default_rng(4))
        attacked_acc = float(np.mean(attacked.predict(queries) == labels))
        recovery = RobustHDRecovery(attacked, RecoveryConfig(), seed=5)
        stream, evalq = queries[:120], queries[120:]
        eval_labels = labels[120:]
        for _ in range(3):
            recovery.process(stream)
        recovered_acc = float(np.mean(attacked.predict(evalq) == eval_labels))
        eval_attacked = float(
            np.mean(
                attack(model, 0.10, "random",
                       np.random.default_rng(4))[0]
                .predict(evalq) == eval_labels
            )
        )
        assert recovered_acc >= eval_attacked - 0.02
        assert recovery.stats.bits_substituted > 0

    def test_process_returns_predictions(self, fitted):
        model, queries, _ = fitted
        recovery = RobustHDRecovery(model.copy(), RecoveryConfig(), seed=0)
        preds = recovery.process(queries[:10])
        assert preds.shape == (10,)
        assert ((preds >= 0) & (preds < model.num_classes)).all()

    def test_indivisible_chunks_rejected(self, fitted):
        model, _, _ = fitted
        with pytest.raises(ValueError, match="divisible"):
            RobustHDRecovery(model.copy(), RecoveryConfig(num_chunks=7))

    def test_multibit_rejected(self, fitted):
        model, _, _ = fitted
        bad = HDCModel(class_hv=model.class_hv.copy(), bits=2)
        with pytest.raises(ValueError, match="1-bit"):
            RobustHDRecovery(bad)


class TestRecoveryStats:
    def test_trust_rate_empty(self):
        stats = RecoveryStats()
        assert stats.trust_rate == 0.0

    def test_trust_rate_ratio(self):
        stats = RecoveryStats(queries_seen=10, queries_trusted=4)
        assert stats.trust_rate == pytest.approx(0.4)


class TestPackedStreamIngest:
    """A packed query stream must drive recovery bit-identically."""

    def test_process_packed_equals_uint8(self, fitted):
        model, encoded_test, _ = fitted
        stream = encoded_test[:120]
        packed_stream = pack(stream)
        rng = np.random.default_rng(0)
        attacked_a, _ = attack(model.copy(), 0.08, "random", rng)
        attacked_b = attacked_a.copy()

        rec_a = RobustHDRecovery(attacked_a, seed=9)
        rec_b = RobustHDRecovery(attacked_b, seed=9)
        preds_a = rec_a.process(stream)
        preds_b = rec_b.process(packed_stream)

        assert (preds_a == preds_b).all()
        assert (attacked_a.class_hv == attacked_b.class_hv).all()
        assert rec_a.stats.bits_substituted == rec_b.stats.bits_substituted
        assert rec_a.stats.queries_trusted == rec_b.stats.queries_trusted

    def test_recover_block_packed_equals_uint8(self, fitted):
        model, encoded_test, _ = fitted
        block = encoded_test[:60]
        rng = np.random.default_rng(1)
        attacked_a, _ = attack(model.copy(), 0.10, "random", rng)
        attacked_b = attacked_a.copy()
        config = RecoveryConfig()
        preds_a = recover_block(
            attacked_a, block, config, np.random.default_rng(4)
        )
        preds_b = recover_block(
            attacked_b, pack(block), config, np.random.default_rng(4)
        )
        assert (preds_a == preds_b).all()
        assert (attacked_a.class_hv == attacked_b.class_hv).all()

    def test_packed_dim_mismatch_rejected(self, fitted):
        model, _, _ = fitted
        bad = pack(np.zeros((2, 64), dtype=np.uint8))
        with pytest.raises(ValueError, match="dim"):
            recover_block(
                model, bad, RecoveryConfig(), np.random.default_rng(0)
            )
