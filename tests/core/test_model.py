"""Tests for the HDC classifier and quantised model."""

import numpy as np
import pytest

from repro.core.encoder import Encoder
from repro.core.hypervector import class_bundle_counts, hamming_similarity
from repro.core.model import (
    HDCClassifier,
    HDCModel,
    _perceptron_epoch,
    _perceptron_epoch_reference,
    quantize_accumulator,
)
from repro.core.packed import float_backend, pack
from repro.datasets.synthetic import make_prototype_classification


@pytest.fixture(scope="module")
def task():
    return make_prototype_classification(
        "toy", num_features=40, num_classes=4, num_train=240, num_test=120,
        boundary_fraction=0.3, boundary_depth=(0.25, 0.45), seed=5,
    )


@pytest.fixture(scope="module")
def encoder(task):
    return Encoder(num_features=task.num_features, dim=1_024, seed=1)


class TestQuantizeAccumulator:
    def test_one_bit_is_sign(self):
        acc = np.array([[-3, 0, 2, -1, 5]])
        out = quantize_accumulator(acc, 1)
        assert out.dtype == np.uint8
        assert list(out[0]) == [0, 0, 1, 0, 1]

    def test_two_bit_range(self):
        acc = np.array([[-10, -3, 3, 10]])
        out = quantize_accumulator(acc, 2)
        assert out.min() == 0 and out.max() == 3
        assert out[0, 0] == 0 and out[0, 3] == 3

    def test_per_class_scaling(self):
        """Each row scales by its own peak."""
        acc = np.array([[-1, 1], [-100, 100]])
        out = quantize_accumulator(acc, 2)
        assert (out[0] == out[1]).all()

    def test_zero_row_stable(self):
        out = quantize_accumulator(np.zeros((2, 4)), 2)
        assert out.shape == (2, 4)

    @pytest.mark.parametrize("bits", [0, 9])
    def test_bad_bits(self, bits):
        with pytest.raises(ValueError):
            quantize_accumulator(np.zeros((1, 4)), bits)

    def test_needs_2d(self):
        with pytest.raises(ValueError, match="k, D"):
            quantize_accumulator(np.zeros(4), 1)


class TestHDCModel:
    def test_validation(self):
        with pytest.raises(ValueError, match="uint8"):
            HDCModel(class_hv=np.zeros((2, 8), dtype=np.int64), bits=1)
        with pytest.raises(ValueError, match="levels above"):
            HDCModel(class_hv=np.full((2, 8), 2, dtype=np.uint8), bits=1)
        with pytest.raises(ValueError, match="num_classes, dim"):
            HDCModel(class_hv=np.zeros(8, dtype=np.uint8), bits=1)

    def test_properties(self):
        m = HDCModel(class_hv=np.zeros((3, 16), dtype=np.uint8), bits=2)
        assert m.num_classes == 3
        assert m.dim == 16
        assert m.total_bits == 3 * 16 * 2

    def test_copy_is_deep(self):
        m = HDCModel(class_hv=np.zeros((2, 8), dtype=np.uint8), bits=1)
        c = m.copy()
        c.class_hv[0, 0] = 1
        assert m.class_hv[0, 0] == 0

    def test_one_bit_similarity_equals_hamming(self):
        """Argmax under the centred dot product matches Hamming argmax."""
        rng = np.random.default_rng(2)
        hv = rng.integers(0, 2, (4, 256), dtype=np.uint8)
        m = HDCModel(class_hv=hv, bits=1)
        q = rng.integers(0, 2, 256, dtype=np.uint8)
        sims = m.similarities(q[None, :])[0]
        hams = np.array([hamming_similarity(q, hv[c]) for c in range(4)])
        assert np.argmax(sims) == np.argmax(hams)
        # And the ordering of all classes agrees, not just the winner.
        assert (np.argsort(sims) == np.argsort(hams)).all()

    def test_query_dim_mismatch(self):
        m = HDCModel(class_hv=np.zeros((2, 8), dtype=np.uint8), bits=1)
        with pytest.raises(ValueError, match="dim"):
            m.predict(np.zeros((1, 9), dtype=np.uint8))

    def test_predict_packed_matches_predict(self):
        rng = np.random.default_rng(6)
        m = HDCModel(
            class_hv=rng.integers(0, 2, (5, 300), dtype=np.uint8), bits=1
        )
        queries = rng.integers(0, 2, (40, 300), dtype=np.uint8)
        assert (m.predict_packed(queries) == m.predict(queries)).all()

    def test_predict_packed_rejects_multibit(self):
        m = HDCModel(class_hv=np.zeros((2, 64), dtype=np.uint8), bits=2)
        with pytest.raises(ValueError, match="1-bit"):
            m.predict_packed(np.zeros((1, 64), dtype=np.uint8))


class TestPackedModelCache:
    def _model_and_queries(self):
        rng = np.random.default_rng(9)
        m = HDCModel(rng.integers(0, 2, (5, 300), dtype=np.uint8))
        queries = rng.integers(0, 2, (12, 300), dtype=np.uint8)
        return m, queries

    def test_predict_packed_packs_model_once(self, monkeypatch):
        """Two consecutive calls must reuse one packed snapshot."""
        import repro.core.model as model_mod

        m, queries = self._model_and_queries()
        real = model_mod._pack_bits
        packed_shapes = []

        def counting_pack(batch):
            packed_shapes.append(batch.shape)
            return real(batch)

        monkeypatch.setattr(model_mod, "_pack_bits", counting_pack)
        m.predict_packed(queries)
        m.predict_packed(queries)
        model_packs = [s for s in packed_shapes if s == m.class_hv.shape]
        assert len(model_packs) == 1

    def test_mutation_invalidates_cache(self):
        m, queries = self._model_and_queries()
        before = m.packed()
        assert m.packed() is before  # cached while untouched
        with m.writable() as hv:
            hv[0, :] ^= 1
        after = m.packed()
        assert after is not before
        assert after.version > before.version
        # The refreshed snapshot serves the mutated bits.
        assert (m.predict_packed(queries) == m.predict(queries)).all()

    def test_bump_version_is_explicit_contract(self):
        m, _ = self._model_and_queries()
        stale = m.packed()
        m.class_hv[0, 0] ^= 1  # direct write, contract violation...
        assert m.packed() is stale  # ...which the cache cannot see
        m.bump_version()  # honouring the contract refreshes it
        assert m.packed() is not stale

    def test_copy_does_not_share_cache(self):
        m, queries = self._model_and_queries()
        m.packed()
        c = m.copy()
        with c.writable() as hv:
            hv[:, :10] ^= 1
        assert (m.predict_packed(queries) == m.predict(queries)).all()
        assert (c.predict_packed(queries) == c.predict(queries)).all()

    def test_packed_rejects_multibit(self):
        m = HDCModel(class_hv=np.zeros((2, 64), dtype=np.uint8), bits=2)
        with pytest.raises(ValueError, match="1-bit"):
            m.packed()


class TestHDCClassifier:
    def test_learns_task(self, task, encoder):
        clf = HDCClassifier(encoder, num_classes=task.num_classes, epochs=0)
        clf.fit(task.train_x, task.train_y)
        assert clf.score(task.test_x, task.test_y) > 0.8

    def test_retraining_not_worse(self, task, encoder):
        encoded_train = encoder.encode_batch(task.train_x)
        encoded_test = encoder.encode_batch(task.test_x)
        base = HDCClassifier(
            encoder, num_classes=task.num_classes, epochs=0
        ).fit_encoded(encoded_train, task.train_y)
        tuned = HDCClassifier(
            encoder, num_classes=task.num_classes, epochs=3
        ).fit_encoded(encoded_train, task.train_y)
        acc0 = base.score_encoded(encoded_test, task.test_y)
        acc3 = tuned.score_encoded(encoded_test, task.test_y)
        assert acc3 >= acc0 - 0.05

    def test_two_bit_model_trains(self, task, encoder):
        clf = HDCClassifier(encoder, num_classes=task.num_classes, bits=2,
                            epochs=0)
        clf.fit(task.train_x, task.train_y)
        assert clf.model.bits == 2
        assert clf.score(task.test_x, task.test_y) > 0.7

    def test_deterministic(self, task, encoder):
        a = HDCClassifier(encoder, num_classes=task.num_classes, epochs=1,
                          seed=3).fit(task.train_x, task.train_y)
        b = HDCClassifier(encoder, num_classes=task.num_classes, epochs=1,
                          seed=3).fit(task.train_x, task.train_y)
        assert (a.model.class_hv == b.model.class_hv).all()

    def test_unfitted_predict_raises(self, encoder, task):
        clf = HDCClassifier(encoder, num_classes=task.num_classes)
        with pytest.raises(RuntimeError, match="not fitted"):
            clf.predict(task.test_x)

    def test_label_validation(self, encoder):
        clf = HDCClassifier(encoder, num_classes=3)
        encoded = np.zeros((2, 1_024), dtype=np.uint8)
        with pytest.raises(ValueError, match="labels must lie"):
            clf.fit_encoded(encoded, np.array([0, 3]))

    def test_sample_count_mismatch(self, encoder):
        clf = HDCClassifier(encoder, num_classes=3)
        with pytest.raises(ValueError, match="samples but"):
            clf.fit_encoded(
                np.zeros((2, 1_024), dtype=np.uint8), np.array([0])
            )

    def test_bad_construction(self, encoder):
        with pytest.raises(ValueError, match="num_classes"):
            HDCClassifier(encoder, num_classes=1)
        with pytest.raises(ValueError, match="epochs"):
            HDCClassifier(encoder, num_classes=3, epochs=-1)


class TestVectorisedFit:
    """The vectorised trainer must exactly replay the per-sample loop."""

    def _encoded(self, task, encoder):
        return (
            encoder.encode_batch(task.train_x),
            np.asarray(task.train_y, dtype=np.int64),
        )

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_epoch_matches_reference_loop(self, task, encoder, seed):
        encoded, labels = self._encoded(task, encoder)
        bipolar = (encoded.astype(np.int8) << 1) - 1
        acc_vec = class_bundle_counts(encoded, labels, task.num_classes)
        acc_ref = acc_vec.copy()
        wrong_vec = _perceptron_epoch(
            acc_vec, bipolar, labels, np.random.default_rng(seed)
        )
        wrong_ref = _perceptron_epoch_reference(
            acc_ref, bipolar, labels, np.random.default_rng(seed)
        )
        assert wrong_vec == wrong_ref
        assert (acc_vec == acc_ref).all()

    def test_full_fit_matches_reference_loop(self, task, encoder):
        """Pinned: fit_encoded == bundling + reference perceptron epochs."""
        encoded, labels = self._encoded(task, encoder)
        clf = HDCClassifier(
            encoder, num_classes=task.num_classes, epochs=3, seed=42
        ).fit_encoded(encoded, labels)

        acc = class_bundle_counts(encoded, labels, task.num_classes)
        bipolar = (encoded.astype(np.int8) << 1) - 1
        rng = np.random.default_rng(42)
        for _ in range(3):
            if _perceptron_epoch_reference(acc, bipolar, labels, rng) == 0:
                break
        assert (clf._acc == acc).all()
        assert (clf.model.class_hv == quantize_accumulator(acc, 1)).all()

    def test_bundling_matches_scatter_add(self, task, encoder):
        encoded, labels = self._encoded(task, encoder)
        acc = np.zeros(
            (task.num_classes, encoded.shape[1]), dtype=np.int64
        )
        np.add.at(acc, labels, encoded.astype(np.int64) * 2 - 1)
        assert (
            class_bundle_counts(encoded, labels, task.num_classes) == acc
        ).all()

    def test_fit_accepts_packed(self, task, encoder):
        encoded, labels = self._encoded(task, encoder)
        a = HDCClassifier(
            encoder, num_classes=task.num_classes, epochs=2, seed=0
        ).fit_encoded(encoded, labels)
        b = HDCClassifier(
            encoder, num_classes=task.num_classes, epochs=2, seed=0
        ).fit_encoded(pack(encoded), labels)
        assert (a.model.class_hv == b.model.class_hv).all()


class TestPartialFit:
    def test_chunked_stream_equals_single_pass_bundle(self, task, encoder):
        encoded = encoder.encode_batch(task.train_x)
        labels = np.asarray(task.train_y, dtype=np.int64)
        full = HDCClassifier(
            encoder, num_classes=task.num_classes, epochs=0, seed=0
        ).fit_encoded(encoded, labels)
        streamed = HDCClassifier(
            encoder, num_classes=task.num_classes, epochs=0, seed=0
        )
        for lo in range(0, encoded.shape[0], 37):
            streamed.partial_fit_encoded(
                encoded[lo : lo + 37], labels[lo : lo + 37]
            )
        assert (streamed.model.class_hv == full.model.class_hv).all()

    def test_chunk_order_irrelevant(self, task, encoder):
        encoded = encoder.encode_batch(task.train_x)
        labels = np.asarray(task.train_y, dtype=np.int64)
        fwd = HDCClassifier(encoder, num_classes=task.num_classes, epochs=0)
        rev = HDCClassifier(encoder, num_classes=task.num_classes, epochs=0)
        chunks = [(lo, lo + 60) for lo in range(0, encoded.shape[0], 60)]
        for lo, hi in chunks:
            fwd.partial_fit_encoded(encoded[lo:hi], labels[lo:hi])
        for lo, hi in reversed(chunks):
            rev.partial_fit_encoded(encoded[lo:hi], labels[lo:hi])
        assert (fwd._stream_acc == rev._stream_acc).all()

    def test_model_usable_after_each_chunk(self, task, encoder):
        encoded = encoder.encode_batch(task.train_x)
        labels = np.asarray(task.train_y, dtype=np.int64)
        clf = HDCClassifier(encoder, num_classes=task.num_classes, epochs=0)
        clf.partial_fit_encoded(encoded[:100], labels[:100])
        assert clf.model is not None
        assert clf.model.predict(encoded[:5]).shape == (5,)

    def test_stream_acc_is_int32(self, task, encoder):
        encoded = encoder.encode_batch(task.train_x[:50])
        labels = np.asarray(task.train_y[:50], dtype=np.int64)
        clf = HDCClassifier(encoder, num_classes=task.num_classes)
        clf.partial_fit_encoded(encoded, labels)
        assert clf._stream_acc.dtype == np.int32

    def test_partial_fit_raw_features(self, task, encoder):
        clf = HDCClassifier(encoder, num_classes=task.num_classes)
        clf.partial_fit(task.train_x[:80], task.train_y[:80])
        ref = HDCClassifier(
            encoder, num_classes=task.num_classes, epochs=0
        ).fit(task.train_x[:80], task.train_y[:80])
        assert (clf.model.class_hv == ref.model.class_hv).all()

    def test_dim_mismatch_rejected(self, task, encoder):
        clf = HDCClassifier(encoder, num_classes=task.num_classes)
        clf.partial_fit_encoded(
            np.zeros((4, 128), dtype=np.uint8), np.zeros(4, dtype=np.int64)
        )
        with pytest.raises(ValueError, match="stream accumulator"):
            clf.partial_fit_encoded(
                np.zeros((4, 64), dtype=np.uint8), np.zeros(4, dtype=np.int64)
            )

    def test_full_fit_resets_stream(self, task, encoder):
        encoded = encoder.encode_batch(task.train_x[:60])
        labels = np.asarray(task.train_y[:60], dtype=np.int64)
        clf = HDCClassifier(encoder, num_classes=task.num_classes, epochs=0)
        clf.partial_fit_encoded(encoded, labels)
        clf.fit_encoded(encoded, labels)
        assert clf._stream_acc is None

    def test_bad_labels_rejected(self, task, encoder):
        clf = HDCClassifier(encoder, num_classes=task.num_classes)
        with pytest.raises(ValueError, match="labels"):
            clf.partial_fit_encoded(
                np.zeros((2, 64), dtype=np.uint8),
                np.array([0, task.num_classes]),
            )


class TestPackedQueryIngest:
    @pytest.fixture(scope="class")
    def fitted(self, task, encoder):
        return HDCClassifier(
            encoder, num_classes=task.num_classes, epochs=0, seed=0
        ).fit(task.train_x, task.train_y)

    def test_similarities_match_uint8(self, task, encoder, fitted):
        encoded = encoder.encode_batch(task.test_x[:40])
        packed = encoder.encode_packed(task.test_x[:40])
        assert (
            fitted.model.similarities(packed)
            == fitted.model.similarities(encoded)
        ).all()

    def test_predict_matches_uint8(self, task, encoder, fitted):
        encoded = encoder.encode_batch(task.test_x[:40])
        packed = encoder.encode_packed(task.test_x[:40])
        assert (
            fitted.model.predict(packed) == fitted.model.predict(encoded)
        ).all()

    def test_float_backend_unpacks(self, task, encoder, fitted):
        packed = encoder.encode_packed(task.test_x[:10])
        want = fitted.model.predict(packed)
        with float_backend():
            assert (fitted.model.predict(packed) == want).all()

    def test_dim_mismatch_rejected(self, fitted):
        bad = pack(np.zeros((2, 64), dtype=np.uint8))
        with pytest.raises(ValueError, match="dim"):
            fitted.model.similarities(bad)

    def test_score_encoded_accepts_packed(self, task, encoder, fitted):
        encoded = encoder.encode_batch(task.test_x)
        packed = encoder.encode_packed(task.test_x)
        labels = np.asarray(task.test_y)
        assert fitted.score_encoded(packed, labels) == fitted.score_encoded(
            encoded, labels
        )

    def test_chunk_similarities_accept_packed(self, task, encoder, fitted):
        from repro.core.chunks import chunk_similarities_batch

        encoded = encoder.encode_batch(task.test_x[:8])
        packed = encoder.encode_packed(task.test_x[:8])
        for m in (2, 8):  # word-aligned (1024/8=128) and 1024/2=512
            assert (
                chunk_similarities_batch(fitted.model, packed, m)
                == chunk_similarities_batch(fitted.model, encoded, m)
            ).all()
