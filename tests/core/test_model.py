"""Tests for the HDC classifier and quantised model."""

import numpy as np
import pytest

from repro.core.encoder import Encoder
from repro.core.hypervector import hamming_similarity
from repro.core.model import HDCClassifier, HDCModel, quantize_accumulator
from repro.datasets.synthetic import make_prototype_classification


@pytest.fixture(scope="module")
def task():
    return make_prototype_classification(
        "toy", num_features=40, num_classes=4, num_train=240, num_test=120,
        boundary_fraction=0.3, boundary_depth=(0.25, 0.45), seed=5,
    )


@pytest.fixture(scope="module")
def encoder(task):
    return Encoder(num_features=task.num_features, dim=1_024, seed=1)


class TestQuantizeAccumulator:
    def test_one_bit_is_sign(self):
        acc = np.array([[-3, 0, 2, -1, 5]])
        out = quantize_accumulator(acc, 1)
        assert out.dtype == np.uint8
        assert list(out[0]) == [0, 0, 1, 0, 1]

    def test_two_bit_range(self):
        acc = np.array([[-10, -3, 3, 10]])
        out = quantize_accumulator(acc, 2)
        assert out.min() == 0 and out.max() == 3
        assert out[0, 0] == 0 and out[0, 3] == 3

    def test_per_class_scaling(self):
        """Each row scales by its own peak."""
        acc = np.array([[-1, 1], [-100, 100]])
        out = quantize_accumulator(acc, 2)
        assert (out[0] == out[1]).all()

    def test_zero_row_stable(self):
        out = quantize_accumulator(np.zeros((2, 4)), 2)
        assert out.shape == (2, 4)

    @pytest.mark.parametrize("bits", [0, 9])
    def test_bad_bits(self, bits):
        with pytest.raises(ValueError):
            quantize_accumulator(np.zeros((1, 4)), bits)

    def test_needs_2d(self):
        with pytest.raises(ValueError, match="k, D"):
            quantize_accumulator(np.zeros(4), 1)


class TestHDCModel:
    def test_validation(self):
        with pytest.raises(ValueError, match="uint8"):
            HDCModel(class_hv=np.zeros((2, 8), dtype=np.int64), bits=1)
        with pytest.raises(ValueError, match="levels above"):
            HDCModel(class_hv=np.full((2, 8), 2, dtype=np.uint8), bits=1)
        with pytest.raises(ValueError, match="num_classes, dim"):
            HDCModel(class_hv=np.zeros(8, dtype=np.uint8), bits=1)

    def test_properties(self):
        m = HDCModel(class_hv=np.zeros((3, 16), dtype=np.uint8), bits=2)
        assert m.num_classes == 3
        assert m.dim == 16
        assert m.total_bits == 3 * 16 * 2

    def test_copy_is_deep(self):
        m = HDCModel(class_hv=np.zeros((2, 8), dtype=np.uint8), bits=1)
        c = m.copy()
        c.class_hv[0, 0] = 1
        assert m.class_hv[0, 0] == 0

    def test_one_bit_similarity_equals_hamming(self):
        """Argmax under the centred dot product matches Hamming argmax."""
        rng = np.random.default_rng(2)
        hv = rng.integers(0, 2, (4, 256), dtype=np.uint8)
        m = HDCModel(class_hv=hv, bits=1)
        q = rng.integers(0, 2, 256, dtype=np.uint8)
        sims = m.similarities(q[None, :])[0]
        hams = np.array([hamming_similarity(q, hv[c]) for c in range(4)])
        assert np.argmax(sims) == np.argmax(hams)
        # And the ordering of all classes agrees, not just the winner.
        assert (np.argsort(sims) == np.argsort(hams)).all()

    def test_query_dim_mismatch(self):
        m = HDCModel(class_hv=np.zeros((2, 8), dtype=np.uint8), bits=1)
        with pytest.raises(ValueError, match="dim"):
            m.predict(np.zeros((1, 9), dtype=np.uint8))

    def test_predict_packed_matches_predict(self):
        rng = np.random.default_rng(6)
        m = HDCModel(
            class_hv=rng.integers(0, 2, (5, 300), dtype=np.uint8), bits=1
        )
        queries = rng.integers(0, 2, (40, 300), dtype=np.uint8)
        assert (m.predict_packed(queries) == m.predict(queries)).all()

    def test_predict_packed_rejects_multibit(self):
        m = HDCModel(class_hv=np.zeros((2, 64), dtype=np.uint8), bits=2)
        with pytest.raises(ValueError, match="1-bit"):
            m.predict_packed(np.zeros((1, 64), dtype=np.uint8))


class TestPackedModelCache:
    def _model_and_queries(self):
        rng = np.random.default_rng(9)
        m = HDCModel(rng.integers(0, 2, (5, 300), dtype=np.uint8))
        queries = rng.integers(0, 2, (12, 300), dtype=np.uint8)
        return m, queries

    def test_predict_packed_packs_model_once(self, monkeypatch):
        """Two consecutive calls must reuse one packed snapshot."""
        import repro.core.model as model_mod

        m, queries = self._model_and_queries()
        real = model_mod._pack_bits
        packed_shapes = []

        def counting_pack(batch):
            packed_shapes.append(batch.shape)
            return real(batch)

        monkeypatch.setattr(model_mod, "_pack_bits", counting_pack)
        m.predict_packed(queries)
        m.predict_packed(queries)
        model_packs = [s for s in packed_shapes if s == m.class_hv.shape]
        assert len(model_packs) == 1

    def test_mutation_invalidates_cache(self):
        m, queries = self._model_and_queries()
        before = m.packed()
        assert m.packed() is before  # cached while untouched
        with m.writable() as hv:
            hv[0, :] ^= 1
        after = m.packed()
        assert after is not before
        assert after.version > before.version
        # The refreshed snapshot serves the mutated bits.
        assert (m.predict_packed(queries) == m.predict(queries)).all()

    def test_bump_version_is_explicit_contract(self):
        m, _ = self._model_and_queries()
        stale = m.packed()
        m.class_hv[0, 0] ^= 1  # direct write, contract violation...
        assert m.packed() is stale  # ...which the cache cannot see
        m.bump_version()  # honouring the contract refreshes it
        assert m.packed() is not stale

    def test_copy_does_not_share_cache(self):
        m, queries = self._model_and_queries()
        m.packed()
        c = m.copy()
        with c.writable() as hv:
            hv[:, :10] ^= 1
        assert (m.predict_packed(queries) == m.predict(queries)).all()
        assert (c.predict_packed(queries) == c.predict(queries)).all()

    def test_packed_rejects_multibit(self):
        m = HDCModel(class_hv=np.zeros((2, 64), dtype=np.uint8), bits=2)
        with pytest.raises(ValueError, match="1-bit"):
            m.packed()


class TestHDCClassifier:
    def test_learns_task(self, task, encoder):
        clf = HDCClassifier(encoder, num_classes=task.num_classes, epochs=0)
        clf.fit(task.train_x, task.train_y)
        assert clf.score(task.test_x, task.test_y) > 0.8

    def test_retraining_not_worse(self, task, encoder):
        encoded_train = encoder.encode_batch(task.train_x)
        encoded_test = encoder.encode_batch(task.test_x)
        base = HDCClassifier(
            encoder, num_classes=task.num_classes, epochs=0
        ).fit_encoded(encoded_train, task.train_y)
        tuned = HDCClassifier(
            encoder, num_classes=task.num_classes, epochs=3
        ).fit_encoded(encoded_train, task.train_y)
        acc0 = base.score_encoded(encoded_test, task.test_y)
        acc3 = tuned.score_encoded(encoded_test, task.test_y)
        assert acc3 >= acc0 - 0.05

    def test_two_bit_model_trains(self, task, encoder):
        clf = HDCClassifier(encoder, num_classes=task.num_classes, bits=2,
                            epochs=0)
        clf.fit(task.train_x, task.train_y)
        assert clf.model.bits == 2
        assert clf.score(task.test_x, task.test_y) > 0.7

    def test_deterministic(self, task, encoder):
        a = HDCClassifier(encoder, num_classes=task.num_classes, epochs=1,
                          seed=3).fit(task.train_x, task.train_y)
        b = HDCClassifier(encoder, num_classes=task.num_classes, epochs=1,
                          seed=3).fit(task.train_x, task.train_y)
        assert (a.model.class_hv == b.model.class_hv).all()

    def test_unfitted_predict_raises(self, encoder, task):
        clf = HDCClassifier(encoder, num_classes=task.num_classes)
        with pytest.raises(RuntimeError, match="not fitted"):
            clf.predict(task.test_x)

    def test_label_validation(self, encoder):
        clf = HDCClassifier(encoder, num_classes=3)
        encoded = np.zeros((2, 1_024), dtype=np.uint8)
        with pytest.raises(ValueError, match="labels must lie"):
            clf.fit_encoded(encoded, np.array([0, 3]))

    def test_sample_count_mismatch(self, encoder):
        clf = HDCClassifier(encoder, num_classes=3)
        with pytest.raises(ValueError, match="samples but"):
            clf.fit_encoded(
                np.zeros((2, 1_024), dtype=np.uint8), np.array([0])
            )

    def test_bad_construction(self, encoder):
        with pytest.raises(ValueError, match="num_classes"):
            HDCClassifier(encoder, num_classes=1)
        with pytest.raises(ValueError, match="epochs"):
            HDCClassifier(encoder, num_classes=3, epochs=-1)
