"""Equivalence tests: packed backend vs the uint8 reference."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.hypervector import bind, hamming_distance
from repro.core.packed import (
    PackedHypervectors,
    pack,
    packed_bind,
    packed_hamming_distance,
    packed_popcount,
    unpack,
)


@st.composite
def hv_batch(draw):
    dim = draw(st.integers(min_value=1, max_value=300))
    batch = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, (batch, dim), dtype=np.uint8)


class TestRoundtrip:
    @given(hv_batch())
    def test_pack_unpack_identity(self, hvs):
        assert (unpack(pack(hvs)) == hvs).all()

    def test_single_vector_roundtrip(self):
        rng = np.random.default_rng(0)
        hv = rng.integers(0, 2, 130, dtype=np.uint8)
        packed = pack(hv)
        assert packed.single
        out = unpack(packed)
        assert out.ndim == 1
        assert (out == hv).all()

    def test_non_multiple_of_64_padded(self):
        hvs = np.ones((2, 65), dtype=np.uint8)
        packed = pack(hvs)
        assert packed.words.shape == (2, 2)
        assert (unpack(packed) == hvs).all()

    def test_rejects_nonbinary(self):
        with pytest.raises(ValueError, match="binary"):
            pack(np.array([0, 2], dtype=np.uint8))

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="1-D or 2-D"):
            pack(np.zeros((2, 2, 2), dtype=np.uint8))


class TestEquivalence:
    @given(hv_batch())
    def test_hamming_matches_reference(self, hvs):
        packed = pack(hvs)
        for i in range(hvs.shape[0]):
            for j in range(hvs.shape[0]):
                ref = hamming_distance(hvs[i], hvs[j])
                got = packed_hamming_distance(
                    packed.words[i], packed.words[j]
                )
                assert int(got) == int(ref)

    @given(hv_batch())
    def test_bind_matches_reference(self, hvs):
        packed = pack(hvs)
        bound_ref = bind(hvs, hvs[::-1].copy())
        bound_packed = packed_bind(packed.words, pack(hvs[::-1].copy()).words)
        assert (
            unpack(PackedHypervectors(bound_packed, packed.dim)) == bound_ref
        ).all()

    def test_query_vs_model_broadcast(self):
        rng = np.random.default_rng(1)
        model = rng.integers(0, 2, (5, 200), dtype=np.uint8)
        query = rng.integers(0, 2, 200, dtype=np.uint8)
        pm, pq = pack(model), pack(query)
        got = packed_hamming_distance(pq.words[0], pm.words)
        ref = hamming_distance(query, model)
        assert (got == ref).all()

    def test_hamming_to_pairwise(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 2, (3, 100), dtype=np.uint8)
        b = rng.integers(0, 2, (4, 100), dtype=np.uint8)
        table = pack(a).hamming_to(pack(b))
        assert table.shape == (3, 4)
        for i in range(3):
            for j in range(4):
                assert table[i, j] == hamming_distance(a[i], b[j])


class TestPopcount:
    def test_known_values(self):
        words = np.array([0, 1, 3, 0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        assert packed_popcount(words) == 0 + 1 + 2 + 64

    def test_axis_semantics(self):
        words = np.array(
            [[1, 1], [0xFF, 0]], dtype=np.uint64
        )
        out = packed_popcount(words)
        assert list(out) == [2, 8]

    def test_dtype_checked(self):
        with pytest.raises(ValueError, match="uint64"):
            packed_popcount(np.zeros(2, dtype=np.int64))


class TestStorage:
    def test_eight_x_compression(self):
        hvs = np.zeros((1, 10_240), dtype=np.uint8)
        packed = pack(hvs)
        assert packed.bytes_per_vector == 10_240 // 8

    def test_validation(self):
        with pytest.raises(ValueError, match="uint64"):
            PackedHypervectors(np.zeros((1, 2), dtype=np.int64), dim=128)
        with pytest.raises(ValueError, match="words per vector"):
            PackedHypervectors(np.zeros((1, 3), dtype=np.uint64), dim=128)
        with pytest.raises(ValueError, match="dim"):
            PackedHypervectors(np.zeros((1, 1), dtype=np.uint64), dim=0)

    def test_bind_method(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 2, (2, 70), dtype=np.uint8)
        b = rng.integers(0, 2, (2, 70), dtype=np.uint8)
        out = pack(a).bind(pack(b))
        assert (unpack(out) == (a ^ b)).all()

    def test_bind_shape_checked(self):
        a = pack(np.zeros((1, 64), dtype=np.uint8))
        b = pack(np.zeros((2, 64), dtype=np.uint8))
        with pytest.raises(ValueError, match="equal"):
            a.bind(b)
