"""Equivalence tests: packed backend vs the uint8 reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunks import chunk_similarities_batch
from repro.core.hypervector import bind, hamming_distance
from repro.core.model import HDCModel
from repro.core.packed import (
    _POP16,
    PackedHypervectors,
    bit_plane_ge,
    bit_plane_sum,
    float_backend,
    pack,
    pack_model,
    packed_backend_enabled,
    packed_bind,
    packed_hamming_distance,
    packed_popcount,
    set_packed_backend,
    unpack,
)


@st.composite
def hv_batch(draw):
    dim = draw(st.integers(min_value=1, max_value=300))
    batch = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, (batch, dim), dtype=np.uint8)


class TestRoundtrip:
    @given(hv_batch())
    def test_pack_unpack_identity(self, hvs):
        assert (unpack(pack(hvs)) == hvs).all()

    def test_single_vector_roundtrip(self):
        rng = np.random.default_rng(0)
        hv = rng.integers(0, 2, 130, dtype=np.uint8)
        packed = pack(hv)
        assert packed.single
        out = unpack(packed)
        assert out.ndim == 1
        assert (out == hv).all()

    def test_non_multiple_of_64_padded(self):
        hvs = np.ones((2, 65), dtype=np.uint8)
        packed = pack(hvs)
        assert packed.words.shape == (2, 2)
        assert (unpack(packed) == hvs).all()

    def test_rejects_nonbinary(self):
        with pytest.raises(ValueError, match="binary"):
            pack(np.array([0, 2], dtype=np.uint8))

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="1-D or 2-D"):
            pack(np.zeros((2, 2, 2), dtype=np.uint8))


class TestEquivalence:
    @given(hv_batch())
    def test_hamming_matches_reference(self, hvs):
        packed = pack(hvs)
        for i in range(hvs.shape[0]):
            for j in range(hvs.shape[0]):
                ref = hamming_distance(hvs[i], hvs[j])
                got = packed_hamming_distance(
                    packed.words[i], packed.words[j]
                )
                assert int(got) == int(ref)

    @given(hv_batch())
    def test_bind_matches_reference(self, hvs):
        packed = pack(hvs)
        bound_ref = bind(hvs, hvs[::-1].copy())
        bound_packed = packed_bind(packed.words, pack(hvs[::-1].copy()).words)
        assert (
            unpack(PackedHypervectors(bound_packed, packed.dim)) == bound_ref
        ).all()

    def test_query_vs_model_broadcast(self):
        rng = np.random.default_rng(1)
        model = rng.integers(0, 2, (5, 200), dtype=np.uint8)
        query = rng.integers(0, 2, 200, dtype=np.uint8)
        pm, pq = pack(model), pack(query)
        got = packed_hamming_distance(pq.words[0], pm.words)
        ref = hamming_distance(query, model)
        assert (got == ref).all()

    def test_hamming_to_pairwise(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 2, (3, 100), dtype=np.uint8)
        b = rng.integers(0, 2, (4, 100), dtype=np.uint8)
        table = pack(a).hamming_to(pack(b))
        assert table.shape == (3, 4)
        for i in range(3):
            for j in range(4):
                assert table[i, j] == hamming_distance(a[i], b[j])


class TestPopcount:
    def test_known_values(self):
        words = np.array([0, 1, 3, 0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        assert packed_popcount(words) == 0 + 1 + 2 + 64

    def test_axis_semantics(self):
        words = np.array(
            [[1, 1], [0xFF, 0]], dtype=np.uint64
        )
        out = packed_popcount(words)
        assert list(out) == [2, 8]

    def test_dtype_checked(self):
        with pytest.raises(ValueError, match="uint64"):
            packed_popcount(np.zeros(2, dtype=np.int64))


class TestStorage:
    def test_eight_x_compression(self):
        hvs = np.zeros((1, 10_240), dtype=np.uint8)
        packed = pack(hvs)
        assert packed.bytes_per_vector == 10_240 // 8

    def test_validation(self):
        with pytest.raises(ValueError, match="uint64"):
            PackedHypervectors(np.zeros((1, 2), dtype=np.int64), dim=128)
        with pytest.raises(ValueError, match="words per vector"):
            PackedHypervectors(np.zeros((1, 3), dtype=np.uint64), dim=128)
        with pytest.raises(ValueError, match="dim"):
            PackedHypervectors(np.zeros((1, 1), dtype=np.uint64), dim=0)

    def test_bind_method(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 2, (2, 70), dtype=np.uint8)
        b = rng.integers(0, 2, (2, 70), dtype=np.uint8)
        out = pack(a).bind(pack(b))
        assert (unpack(out) == (a ^ b)).all()

    def test_bind_shape_checked(self):
        a = pack(np.zeros((1, 64), dtype=np.uint8))
        b = pack(np.zeros((2, 64), dtype=np.uint8))
        with pytest.raises(ValueError, match="equal"):
            a.bind(b)


# Odd dimensionalities deliberately straddle word and byte boundaries.
_ODD_DIMS = st.sampled_from([1, 7, 63, 64, 65, 100, 127, 128, 129, 300, 1000])


@st.composite
def model_and_queries(draw):
    """A 1-bit model plus a binary query batch at an awkward dimension."""
    dim = draw(_ODD_DIMS)
    k = draw(st.integers(min_value=2, max_value=6))
    batch = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    model = HDCModel(rng.integers(0, 2, (k, dim), dtype=np.uint8))
    queries = rng.integers(0, 2, (batch, dim), dtype=np.uint8)
    return model, queries


class TestBackendEquivalence:
    """The packed engine must be bit-identical to the float64 reference."""

    @given(model_and_queries())
    @settings(deadline=None)
    def test_similarities_bit_identical(self, mq):
        model, queries = mq
        packed_sims = model.similarities(queries)
        with float_backend():
            float_sims = model.similarities(queries)
        assert (packed_sims == float_sims).all()

    @given(model_and_queries())
    @settings(deadline=None)
    def test_predict_identical_including_ties(self, mq):
        model, queries = mq
        packed_preds = model.predict(queries)
        with float_backend():
            float_preds = model.predict(queries)
        assert (packed_preds == float_preds).all()
        assert (model.predict_packed(queries) == float_preds).all()

    @given(model_and_queries(), st.integers(min_value=1, max_value=4))
    @settings(deadline=None)
    def test_chunk_similarities_bit_identical(self, mq, chunk_factor):
        model, queries = mq
        divisors = [m for m in range(1, model.dim + 1) if model.dim % m == 0]
        num_chunks = divisors[min(chunk_factor, len(divisors) - 1)]
        packed_sims = chunk_similarities_batch(model, queries, num_chunks)
        with float_backend():
            float_sims = chunk_similarities_batch(model, queries, num_chunks)
        assert (packed_sims == float_sims).all()

    @given(hv_batch())
    def test_bind_roundtrip_odd_dims(self, hvs):
        packed = pack(hvs).bind(pack(hvs[::-1].copy()))
        assert (unpack(packed) == bind(hvs, hvs[::-1].copy())).all()

    @given(hv_batch())
    def test_hamming_matches_reference_vectorised(self, hvs):
        packed = pack(hvs)
        got = packed.hamming_to(packed)
        ref = np.bitwise_xor(hvs[:, None, :], hvs[None, :, :]).sum(
            axis=-1, dtype=np.int64
        )
        assert (got == ref).all()


class TestBackendToggle:
    def test_enabled_by_default(self):
        assert packed_backend_enabled()

    def test_context_manager_restores(self):
        assert packed_backend_enabled()
        with float_backend():
            assert not packed_backend_enabled()
        assert packed_backend_enabled()

    def test_set_packed_backend(self):
        try:
            set_packed_backend(False)
            assert not packed_backend_enabled()
        finally:
            set_packed_backend(True)


class TestPopcountFastPath:
    def test_matches_lookup_table(self):
        """The hardware popcount and the 16-bit LUT fallback agree."""
        rng = np.random.default_rng(11)
        words = rng.integers(0, 2**63, (8, 5), dtype=np.uint64)
        lut = _POP16[words.view(np.uint16).reshape(8, 5, 4)].sum(
            axis=(-1, -2), dtype=np.int64
        )
        assert (packed_popcount(words) == lut).all()


class TestForcedLutFallback:
    """The NumPy 1.x path: ``_HAS_BITWISE_COUNT`` off forces the 16-bit
    LUT popcount.  The switch is read at call time, so monkeypatching it
    (as ``REPRO_FORCE_POP16_LUT=1`` does at import) reroutes every
    popcount — and nothing downstream may notice."""

    def _force_lut(self, monkeypatch):
        from repro.core import packed as packed_mod

        monkeypatch.setattr(packed_mod, "_HAS_BITWISE_COUNT", False)

    def test_popcount_routes_through_lut(self, monkeypatch):
        rng = np.random.default_rng(23)
        words = rng.integers(0, 2**63, (6, 9), dtype=np.uint64)
        fast = packed_popcount(words)
        self._force_lut(monkeypatch)
        assert (packed_popcount(words) == fast).all()

    def test_distances_bit_identical_under_lut(self, monkeypatch):
        rng = np.random.default_rng(24)
        model = HDCModel(rng.integers(0, 2, (5, 321), dtype=np.uint8))
        queries = rng.integers(0, 2, (17, 321), dtype=np.uint8)
        fast_sims = model.similarities(queries)
        fast_preds = model.predict(queries)
        self._force_lut(monkeypatch)
        model_lut = HDCModel(model.class_hv.copy())
        assert (model_lut.similarities(queries) == fast_sims).all()
        assert (model_lut.predict(queries) == fast_preds).all()

    def test_kernel_backend_honours_lut_switch(self, monkeypatch):
        """The extracted numpy kernel backend reads the switch at call
        time too — no import-order trap."""
        from repro.core import kernels

        rng = np.random.default_rng(25)
        q = rng.integers(0, 2**63, (12, 7), dtype=np.uint64)
        m = rng.integers(0, 2**63, (4, 7), dtype=np.uint64)
        backend = kernels.get_backend("numpy")
        fast = backend.distance_table(q, m)
        self._force_lut(monkeypatch)
        assert (backend.distance_table(q, m) == fast).all()


class TestPackedModel:
    def test_pack_model_roundtrip(self):
        rng = np.random.default_rng(12)
        class_hv = rng.integers(0, 2, (4, 130), dtype=np.uint8)
        pm = pack_model(class_hv, version=5)
        assert pm.version == 5
        assert pm.num_classes == 4
        assert (
            unpack(PackedHypervectors(pm.words, pm.dim)) == class_hv
        ).all()

    def test_chunk_words_alignment(self):
        rng = np.random.default_rng(13)
        pm = pack_model(rng.integers(0, 2, (3, 1280), dtype=np.uint8))
        aligned = pm.chunk_words(20)  # chunk size 64
        assert aligned is not None and aligned.shape == (3, 20, 1)
        assert pm.chunk_words(10).shape == (3, 10, 2)
        assert pm.chunk_words(40) is None  # chunk size 32: not word-aligned
        assert pm.chunk_words(3) is None  # 1280 % 3 != 0

    def test_distances_match_reference(self):
        rng = np.random.default_rng(14)
        class_hv = rng.integers(0, 2, (5, 200), dtype=np.uint8)
        queries = rng.integers(0, 2, (9, 200), dtype=np.uint8)
        pm = pack_model(class_hv)
        got = pm.distances(pack(queries).words)
        ref = np.bitwise_xor(queries[:, None, :], class_hv[None, :, :]).sum(
            axis=-1, dtype=np.int64
        )
        assert (got == ref).all()


@st.composite
def word_operands(draw):
    """A stack of equal-shape uint64 word arrays plus their bit matrix."""
    num_operands = draw(st.integers(min_value=1, max_value=9))
    dim = draw(st.integers(min_value=1, max_value=150))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, (num_operands, dim), dtype=np.uint8)
    operands = [pack(bits[i : i + 1]).words for i in range(num_operands)]
    return operands, bits


class TestBitPlanes:
    @given(word_operands())
    @settings(deadline=None)
    def test_sum_planes_encode_counts(self, case):
        """The little-endian planes spell the per-position operand count."""
        operands, bits = case
        planes = bit_plane_sum(operands)
        dim = bits.shape[1]
        counts = np.zeros(dim, dtype=np.int64)
        for i, plane in enumerate(planes):
            plane_bits = unpack(
                PackedHypervectors(words=plane, dim=dim)
            )[0].astype(np.int64)
            counts += plane_bits << i
        assert (counts == bits.sum(axis=0)).all()

    @given(word_operands(), st.integers(min_value=-1, max_value=11))
    @settings(deadline=None)
    def test_ge_matches_integer_compare(self, case, threshold):
        operands, bits = case
        planes = bit_plane_sum(operands)
        out = bit_plane_ge(planes, threshold)
        dim = bits.shape[1]
        got = unpack(PackedHypervectors(words=out, dim=dim))[0]
        expected = (bits.sum(axis=0) >= threshold).astype(np.uint8)
        # Compare only real dims: pad bits of the all-ones threshold<=0
        # result are not meaningful.
        assert (got == expected).all()

    def test_sum_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            bit_plane_sum([])

    def test_ge_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            bit_plane_ge([], 1)

    def test_single_operand_identity(self):
        words = pack(np.array([[1, 0, 1]], dtype=np.uint8)).words
        planes = bit_plane_sum([words])
        assert len(planes) == 1
        assert planes[0] is words

    def test_plane_count_is_logarithmic(self):
        rng = np.random.default_rng(0)
        operands = [
            pack(rng.integers(0, 2, (2, 64), dtype=np.uint8)).words
            for _ in range(100)
        ]
        planes = bit_plane_sum(operands)
        # 100 operands need 7 counter bits; the adder tree may keep one
        # (all-zero) top carry plane untrimmed.
        assert len(planes) <= 8


class TestPackedIndexing:
    def test_len(self):
        packed = pack(np.zeros((5, 70), dtype=np.uint8))
        assert len(packed) == 5

    def test_int_index_returns_single(self):
        rng = np.random.default_rng(1)
        hvs = rng.integers(0, 2, (4, 130), dtype=np.uint8)
        packed = pack(hvs)
        row = packed[2]
        assert row.single
        assert (unpack(row) == hvs[2]).all()

    def test_slice_and_fancy_index(self):
        rng = np.random.default_rng(2)
        hvs = rng.integers(0, 2, (6, 70), dtype=np.uint8)
        packed = pack(hvs)
        assert (unpack(packed[1:4]) == hvs[1:4]).all()
        idx = np.array([5, 0, 3])
        assert (unpack(packed[idx]) == hvs[idx]).all()

    def test_views_share_words(self):
        packed = pack(np.ones((3, 64), dtype=np.uint8))
        assert np.shares_memory(packed[0:2].words, packed.words)


class TestPerturbationHelpers:
    """packed_flip_bits / packed_single_bit_flips vs the uint8 reference."""

    def test_flip_bits_matches_reference(self):
        from repro.core.packed import packed_flip_bits

        rng = np.random.default_rng(3)
        hvs = rng.integers(0, 2, (4, 130), dtype=np.uint8)
        idx = rng.choice(130, size=17, replace=False)
        flipped = packed_flip_bits(pack(hvs).words, 130, idx)
        expected = hvs.copy()
        expected[:, idx] ^= 1
        got = unpack(PackedHypervectors(words=flipped, dim=130, single=False))
        assert (got == expected).all()

    def test_flip_is_involution(self):
        from repro.core.packed import packed_flip_bits

        rng = np.random.default_rng(4)
        words = pack(rng.integers(0, 2, (2, 200), dtype=np.uint8)).words
        idx = np.array([0, 63, 64, 199])
        assert (
            packed_flip_bits(packed_flip_bits(words, 200, idx), 200, idx)
            == words
        ).all()

    def test_flip_preserves_pad_bits(self):
        from repro.core.packed import packed_flip_bits, packed_popcount

        hvs = np.ones((1, 70), dtype=np.uint8)
        flipped = packed_flip_bits(pack(hvs).words, 70, np.arange(70))
        # Every logical bit flipped to 0; pad bits must stay 0 too.
        assert packed_popcount(flipped).item() == 0

    def test_flip_validates_range_and_duplicates(self):
        from repro.core.packed import packed_flip_bits

        words = pack(np.zeros((1, 70), dtype=np.uint8)).words
        with pytest.raises(ValueError):
            packed_flip_bits(words, 70, np.array([70]))
        with pytest.raises(ValueError):
            packed_flip_bits(words, 70, np.array([-1]))
        with pytest.raises(ValueError):
            packed_flip_bits(words, 70, np.array([3, 3]))
        with pytest.raises(ValueError):
            packed_flip_bits(words.astype(np.int64), 70, np.array([3]))

    def test_single_bit_flips_candidates(self):
        from repro.core.packed import packed_single_bit_flips

        rng = np.random.default_rng(5)
        hv = rng.integers(0, 2, (1, 130), dtype=np.uint8)
        row = pack(hv).words[0]
        positions = np.array([0, 63, 64, 129, 7])
        cands = packed_single_bit_flips(row, 130, positions)
        assert cands.shape == (5, row.shape[0])
        for j, p in enumerate(positions):
            expected = hv[0].copy()
            expected[p] ^= 1
            got = unpack(PackedHypervectors(
                words=cands[j][None, :], dim=130, single=True
            ))
            assert (got == expected).all(), p

    def test_single_bit_flips_validation(self):
        from repro.core.packed import packed_single_bit_flips

        row = pack(np.zeros((1, 64), dtype=np.uint8)).words[0]
        with pytest.raises(ValueError):
            packed_single_bit_flips(row, 64, np.array([64]))
        with pytest.raises(ValueError):
            packed_single_bit_flips(row[None, :], 64, np.array([0]))
