"""Tests for the ``python -m repro`` command-line entry point."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_single_fast_experiment(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "finished in" in out

    def test_scale_flag(self, capsys):
        assert main(["figure2", "--scale", "smoke"]) == 0
        assert "HDC-PIM" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table99"])
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure2", "--scale", "galactic"])

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table1", "table3", "table4",
            "figure2", "figure3", "figure4a", "figure4b",
            "continuous", "ecc_comparison", "rowhammer", "informed",
        }
