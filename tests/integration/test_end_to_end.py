"""Cross-module integration tests: the full RobustHD story at small scale."""

import numpy as np
import pytest

from repro.baselines.deploy import QuantizedDeployment
from repro.baselines.mlp import MLPClassifier
from repro.core.pipeline import RecoveryExperiment
from repro.core.recovery import RecoveryConfig
from repro.datasets import load
from repro.faults.api import attack
from repro.faults.models import StuckAtFaultMap


@pytest.fixture(scope="module")
def experiment():
    data = load("ucihar", max_train=500, max_test=500)
    return RecoveryExperiment(dataset=data, dim=4_000, epochs=0, stream_fraction=0.6,
                              seed=0)


class TestRobustnessStory:
    def test_hdc_beats_dnn_under_attack(self, experiment):
        """The paper's central comparison, end to end on one task."""
        data = load("ucihar", max_train=500, max_test=500)
        mlp = MLPClassifier(data.num_features, data.num_classes,
                            hidden=(64,), epochs=15, seed=0)
        mlp.fit(data.train_x, data.train_y)
        deployment = QuantizedDeployment(mlp, width=8)
        dnn_clean = deployment.score(data.test_x, data.test_y)
        dnn_attacked = np.mean([
            deployment.attacked(0.10, "random", np.random.default_rng(s))
            .score(data.test_x, data.test_y)
            for s in range(3)
        ])
        hdc_loss = np.mean([
            experiment.attack_only(0.10, seed=s) for s in range(3)
        ])
        dnn_loss = dnn_clean - dnn_attacked
        assert dnn_loss > 5 * max(hdc_loss, 0.001)

    def test_recovery_stable_at_small_scale(self, experiment):
        """At D=4k with a short stream the substitution equilibrium noise
        rivals the attack loss, so we assert stability (no collapse), and
        leave the strict improvement claim to the full-dimensionality test
        below and the default-scale benchmarks."""
        without = np.mean([
            experiment.attack_only(0.10, seed=s) for s in range(3)
        ])
        with_rec = np.mean([
            experiment.attack_and_recover(
                0.10, RecoveryConfig(), passes=3, seed=s
            ).loss_with_recovery
            for s in range(3)
        ])
        assert with_rec <= without + 0.03

    def test_recovery_beats_no_recovery_at_full_dim(self):
        """The paper's Table 4 claim at full D=10k with a real stream."""
        data = load("ucihar", max_train=800, max_test=1200)
        experiment = RecoveryExperiment(
            dataset=data, dim=10_000, epochs=0, stream_fraction=0.6, seed=0
        )
        without = np.mean([
            experiment.attack_only(0.10, seed=s) for s in range(3)
        ])
        with_rec = np.mean([
            experiment.attack_and_recover(
                0.10, RecoveryConfig(), passes=3, seed=s
            ).loss_with_recovery
            for s in range(2)
        ])
        assert with_rec < without

    def test_loss_grows_with_error_rate(self, experiment):
        losses = [
            np.mean([experiment.attack_only(r, seed=s) for s in range(4)])
            for r in (0.02, 0.30)
        ]
        assert losses[1] > losses[0]

    def test_full_run_deterministic(self):
        data = load("pecan", max_train=300, max_test=300)

        def run():
            exp = RecoveryExperiment(dataset=data, dim=2_000, epochs=0,
                                     stream_fraction=0.5, seed=3)
            out = exp.attack_and_recover(0.08, passes=2, seed=4)
            return out.recovered_accuracy

        assert run() == run()


class TestStuckAtRecovery:
    def test_recovery_with_dead_cells(self, experiment):
        """Recovery under *stuck-at* faults: writes to dead cells are
        discarded after every repair, yet healthy bits in the same chunks
        still compensate — accuracy must not collapse."""
        model = experiment.model.copy()
        faults = StuckAtFaultMap(model.class_hv.shape, rate=0.05,
                                 rng=np.random.default_rng(1))
        faults.apply(model)
        stuck_acc = float(
            np.mean(model.predict(experiment.eval_queries)
                    == experiment.eval_labels)
        )
        from repro.core.recovery import RobustHDRecovery

        recovery = RobustHDRecovery(model, RecoveryConfig(), seed=2)
        for _ in range(2):
            recovery.process(experiment.stream_queries)
            faults.apply(model)  # dead cells discard the repairs
        final_acc = float(
            np.mean(model.predict(experiment.eval_queries)
                    == experiment.eval_labels)
        )
        assert final_acc >= stuck_acc - 0.05


class TestAttackInvariants:
    def test_binary_model_mode_equivalence(self, experiment):
        """Random and targeted attacks are statistically identical on a
        1-bit model (Table 3's HDC rows)."""
        losses = {
            mode: np.mean([
                float(np.mean(
                    attack(
                        experiment.model, 0.15, mode,
                        np.random.default_rng(s)
                    )[0].predict(experiment.eval_queries)
                    == experiment.eval_labels
                ))
                for s in range(4)
            ])
            for mode in ("random", "targeted")
        }
        assert abs(losses["random"] - losses["targeted"]) < 0.03
