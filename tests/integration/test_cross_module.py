"""Cross-module consistency checks tying the substrates together."""

import numpy as np
import pytest

from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier
from repro.core.packed import pack, packed_hamming_distance
from repro.datasets.synthetic import make_prototype_classification
from repro.faults.api import attack
from repro.pim.dpim import DPIM
from repro.pim.executor import HDCExecutor
from repro.pim.mapping import map_hdc_model, writes_per_cell_per_inference


@pytest.fixture(scope="module")
def fitted():
    task = make_prototype_classification(
        "toy", num_features=24, num_classes=3, num_train=150, num_test=60,
        seed=18,
    )
    encoder = Encoder(num_features=24, dim=512, seed=8)
    clf = HDCClassifier(encoder, num_classes=3, epochs=0).fit(
        task.train_x, task.train_y
    )
    queries = encoder.encode_batch(task.test_x)
    return clf.model, queries


class TestThreeWayPredictionAgreement:
    def test_reference_packed_and_pim_agree(self, fitted):
        """The numpy reference, the packed backend and the functional
        crossbar executor all classify identically."""
        model, queries = fitted
        ref = model.predict(queries[:15])
        packed = model.predict_packed(queries[:15])
        pim = HDCExecutor(model, tile_rows=512).classify_batch(queries[:15])
        assert (ref == packed).all()
        assert (ref == pim).all()

    def test_agreement_survives_attack(self, fitted):
        """All three backends see the *same* corrupted bits."""
        model, queries = fitted
        attacked, _ = attack(
            model, 0.15, "random", np.random.default_rng(0)
        )
        ref = attacked.predict(queries[:10])
        packed = attacked.predict_packed(queries[:10])
        pim = HDCExecutor(attacked, tile_rows=512).classify_batch(queries[:10])
        assert (ref == packed).all()
        assert (ref == pim).all()


class TestCostModelCrossCheck:
    def test_executor_volume_below_analytic_classify(self, fitted):
        """The functional executor implements the XOR stage in-memory and
        the popcount peripherally, so its gate volume must be bounded by
        the analytic model's full in-memory classify (XOR + popcount)."""
        model, queries = fitted
        executor = HDCExecutor(model, tile_rows=512)
        executor.classify(queries[0])
        analytic = DPIM().hdc_classify(model.dim, model.num_classes)
        assert 0 < executor.cost.gate_evals <= analytic.gate_evals

    def test_mapping_consistent_with_model(self, fitted):
        model, _ = fitted
        placement = map_hdc_model(24, model.dim, model.num_classes)
        kernel = DPIM().hdc_inference(24, model.dim, model.num_classes)
        wpc = writes_per_cell_per_inference(placement, kernel)
        assert wpc > 0
        # More rotation, less wear.
        assert writes_per_cell_per_inference(placement, kernel, 64) < wpc


class TestPackedDistancesMatchModelScores:
    def test_argmin_distance_is_argmax_similarity(self, fitted):
        model, queries = fitted
        packed_model = pack(model.class_hv)
        for q in queries[:10]:
            dists = packed_hamming_distance(pack(q).words[0],
                                            packed_model.words)
            assert int(np.argmin(dists)) == int(model.predict(q[None, :])[0])
