"""HTTP ingress error grades and cancellation-path regression tests.

Covers the full ``/v1/predict`` status ladder (400 / 429 / 503 / 504),
keep-alive reuse across mixed outcomes, and the aborting-client path:
the admission slot must be released exactly once and no "Future
exception was never retrieved" warning may escape the handler.
"""

import asyncio
import gc
import http.client
import json
import logging
import socket
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier
from repro.datasets.synthetic import make_prototype_classification
from repro.serve import ServingEngine, TenantRegistry
from repro.serve.gateway import GatewayServer
from repro.serve.http import _predict


def _fitted(seed, num_features=10, dim=512):
    task = make_prototype_classification(
        f"http{seed}", num_features=num_features, num_classes=4,
        num_train=120, num_test=32, seed=seed,
    )
    encoder = Encoder(
        num_features=num_features, dim=dim, levels=8, seed=seed + 1
    )
    clf = HDCClassifier(
        encoder, num_classes=4, epochs=1, seed=seed + 2
    ).fit(task.train_x, task.train_y)
    return task, clf


@pytest.fixture(scope="module")
def stack():
    task, clf = _fitted(51)
    registry = TenantRegistry()
    registry.add("alpha", clf)
    engine = ServingEngine(registry, num_workers=2, ring_slots=32)
    server = GatewayServer(engine, http_port=0).start()
    yield {"engine": engine, "server": server, "task": task, "clf": clf}
    server.stop()
    engine.stop()


def _request(port, method, path, body=None, conn=None):
    """One request; returns (status, payload, headers, connection)."""
    owned = conn is None
    if conn is None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request(
            method, path,
            body=json.dumps(body) if body is not None else None,
        )
        resp = conn.getresponse()
        payload = json.loads(resp.read() or b"null")
        return resp.status, payload, dict(resp.getheaders()), conn
    finally:
        if owned:
            conn.close()


class TestErrorGrades:
    def test_malformed_json_is_400(self, stack):
        port = stack["server"].http_port
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            conn.request("POST", "/v1/predict", body=b"{not json")
            resp = conn.getresponse()
            payload = json.loads(resp.read())
            assert resp.status == 400
            assert "not valid JSON" in payload["error"]
        finally:
            conn.close()

    def test_non_object_body_is_400(self, stack):
        port = stack["server"].http_port
        status, payload, _, _ = _request(
            port, "POST", "/v1/predict", [1, 2, 3]
        )
        assert status == 400
        assert "JSON object" in payload["error"]

    def test_empty_payload_rows_are_400(self, stack):
        port = stack["server"].http_port
        status, payload, _, _ = _request(
            port, "POST", "/v1/predict", {"tenant": "alpha", "packed": []}
        )
        assert status == 400

    def test_rate_limited_is_429_with_retry_after(self, stack):
        server = GatewayServer(
            stack["engine"], rate_limit=1.0, burst=1.0, http_port=0
        ).start()
        task, clf = stack["task"], stack["clf"]
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        try:
            saw = None
            for _ in range(4):
                status, payload, headers, _ = _request(
                    server.http_port, "POST", "/v1/predict",
                    {"tenant": "alpha", "packed": words.tolist()},
                )
                if status == 429:
                    saw = (payload, headers)
                    break
            assert saw is not None, "burst of 1 never throttled"
            payload, headers = saw
            assert payload["error"] == "RATE_LIMITED"
            assert 0 < payload["retry_after_ms"] <= 1100
            assert int(headers["Retry-After"]) >= 1
        finally:
            server.stop()

    def test_draining_gateway_is_503(self, stack):
        server = GatewayServer(stack["engine"], http_port=0).start()
        task, clf = stack["task"], stack["clf"]
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        try:
            server.admission.drain()
            status, payload, _, _ = _request(
                server.http_port, "POST", "/v1/predict",
                {"tenant": "alpha", "packed": words.tolist()},
            )
            assert status == 503
            assert payload["error"] == "SHUTTING_DOWN"
            status, payload, _, _ = _request(
                server.http_port, "GET", "/healthz"
            )
            assert status == 200
            assert payload["status"] == "draining"
        finally:
            server.stop()

    def test_expired_deadline_is_504(self, stack):
        port = stack["server"].http_port
        task, clf = stack["task"], stack["clf"]
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        status, payload, _, _ = _request(
            port, "POST", "/v1/predict",
            {"tenant": "alpha", "packed": words.tolist(),
             "deadline_ms": 1e-6},
        )
        assert status == 504
        assert payload["error"] == "EXPIRED"
        assert stack["server"].admission.inflight == 0


class TestKeepAlive:
    def test_connection_survives_mixed_outcomes(self, stack):
        """One keep-alive connection rides 200 / 400 / 504 / 200."""
        port = stack["server"].http_port
        task, clf = stack["task"], stack["clf"]
        words = clf.encoder.encode_packed(task.test_x[:4]).words
        expected = clf.predict(task.test_x[:4]).tolist()
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            status, payload, headers, _ = _request(
                port, "POST", "/v1/predict",
                {"tenant": "alpha", "packed": words.tolist()}, conn=conn,
            )
            assert status == 200
            assert payload["predictions"] == expected
            assert headers["Connection"] == "keep-alive"
            sock = conn.sock
            assert sock is not None

            status, _, headers, _ = _request(
                port, "POST", "/v1/predict", {"tenant": "alpha"}, conn=conn,
            )
            assert status == 400
            assert headers["Connection"] == "keep-alive"

            status, _, _, _ = _request(
                port, "POST", "/v1/predict",
                {"tenant": "alpha", "packed": words.tolist(),
                 "deadline_ms": 1e-6},
                conn=conn,
            )
            assert status == 504

            status, payload, _, _ = _request(
                port, "POST", "/v1/predict",
                {"tenant": "alpha", "packed": words.tolist()}, conn=conn,
            )
            assert status == 200
            assert payload["predictions"] == expected
            # Same socket end to end: errors did not cost the connection.
            assert conn.sock is sock
        finally:
            conn.close()

    def test_connection_close_honoured(self, stack):
        port = stack["server"].http_port
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            conn.request("GET", "/healthz",
                         headers={"Connection": "close"})
            resp = conn.getresponse()
            assert resp.status == 200
            assert dict(resp.getheaders())["Connection"] == "close"
            resp.read()
            assert resp.isclosed()
        finally:
            conn.close()


class TestAbortingClient:
    def _drain_inflight(self, admission, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if admission.inflight == 0:
                return True
            time.sleep(0.01)
        return False

    def test_abort_mid_request_releases_admission(self, stack, caplog):
        """Client slams the socket shut after POSTing: the slot drains
        back to zero and asyncio logs no unretrieved-future error."""
        server, (task, clf) = stack["server"], (stack["task"], stack["clf"])
        words = clf.encoder.encode_packed(task.test_x[:4]).words
        body = json.dumps(
            {"tenant": "alpha", "packed": words.tolist()}
        ).encode()
        with caplog.at_level(logging.ERROR, logger="asyncio"):
            for _ in range(4):
                sock = socket.create_connection(
                    ("127.0.0.1", server.http_port), timeout=5
                )
                sock.sendall(
                    b"POST /v1/predict HTTP/1.1\r\n"
                    b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
                )
                # Abort without ever reading the response.
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    b"\x01\x00\x00\x00\x00\x00\x00\x00",
                )
                sock.close()
            assert self._drain_inflight(server.admission)
            # A well-behaved request still works afterwards.
            status, payload, _, _ = _request(
                server.http_port, "POST", "/v1/predict",
                {"tenant": "alpha", "packed": words.tolist()},
            )
            assert status == 200
            gc.collect()
        assert not [
            r for r in caplog.records if "never retrieved" in r.getMessage()
        ]

    def test_stop_unwinds_parked_keepalive_handler(self, stack):
        """stop() must cancel HTTP handlers parked in readline, not
        leave them for the loop's final blanket cancel."""
        server = GatewayServer(stack["engine"], http_port=0).start()
        task, clf = stack["task"], stack["clf"]
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        conn = http.client.HTTPConnection(
            "127.0.0.1", server.http_port, timeout=10
        )
        try:
            status, _, _, _ = _request(
                server.http_port, "POST", "/v1/predict",
                {"tenant": "alpha", "packed": words.tolist()}, conn=conn,
            )
            assert status == 200
            # The handler is now parked in readline on a live socket.
            start = time.monotonic()
            server.stop()
            assert time.monotonic() - start < 5.0
            assert server.admission.inflight == 0
            # The parked connection was unwound: reads see EOF.
            conn.sock.settimeout(5)
            assert conn.sock.recv(1) == b""
        finally:
            conn.close()


class TestPredictCancellationUnit:
    """Direct exercise of ``_predict``'s cancellation invariant."""

    def _gateway(self):
        admission = SimpleNamespace(draining=False)
        admission.released = 0
        admission.admit = lambda tenant: None

        def _release():
            admission.released += 1

        admission.release = _release
        engine = SimpleNamespace(tenants=("alpha",), callbacks=[])

        def _submit(request):
            return SimpleNamespace(
                add_done_callback=engine.callbacks.append
            )

        engine.submit = _submit
        return SimpleNamespace(admission=admission, engine=engine)

    def test_cancel_mid_waiter_releases_slot_exactly_once(self):
        gateway = self._gateway()
        matrix = np.zeros((1, 8), dtype=np.uint64)

        async def scenario():
            handler = asyncio.ensure_future(
                _predict(gateway, matrix, False, "alpha", None)
            )
            await asyncio.sleep(0)  # submit, then park on the waiter
            assert len(gateway.engine.callbacks) == 1
            assert gateway.admission.released == 0
            handler.cancel()
            with pytest.raises(asyncio.CancelledError):
                await handler
            # The cancelled handler must NOT have released: the engine
            # still owns the request and releases via its callback.
            assert gateway.admission.released == 0
            result = SimpleNamespace(predictions=None, expired=True)
            gateway.engine.callbacks[0](result)
            await asyncio.sleep(0)  # run the scheduled _settle
            await asyncio.sleep(0)
            assert gateway.admission.released == 1

        asyncio.run(scenario())
        # A late result against the cancelled waiter is a set_result
        # no-op, never a stored exception -- nothing for the GC pass to
        # complain about.
        gc.collect()

    def test_late_result_after_cancel_settles_quietly(self):
        gateway = self._gateway()
        matrix = np.zeros((1, 8), dtype=np.uint64)
        flagged = []

        async def scenario():
            loop = asyncio.get_running_loop()
            loop.set_exception_handler(
                lambda lp, ctx: flagged.append(ctx)
            )
            handler = asyncio.ensure_future(
                _predict(gateway, matrix, False, "alpha", None)
            )
            await asyncio.sleep(0)
            handler.cancel()
            with pytest.raises(asyncio.CancelledError):
                await handler
            gateway.engine.callbacks[0](
                SimpleNamespace(predictions=np.array([1]), expired=False)
            )
            await asyncio.sleep(0)
            await asyncio.sleep(0)
            gc.collect()

        asyncio.run(scenario())
        gc.collect()
        assert flagged == []
        assert gateway.admission.released == 1
