"""Live-recovery serving tests: snapshot adoption, bit-identity, degraded mode.

The headline equivalence pin: a seeded attack-and-recover run publishing
generations into a serving engine under live traffic must end
bit-identical — final model words *and* served predictions — to the same
run executed sequentially with no serving tier attached.  Publishing
draws from no RNG and reads only the version-stamped packed cache, so
any divergence is a real concurrency bug.
"""

import glob
import threading
import time

import numpy as np
import pytest

from repro.core.packed import PackedModel
from repro.core.pipeline import RecoveryExperiment
from repro.core.recovery import ModelPublisher, RecoveryConfig
from repro.datasets.synthetic import make_prototype_classification
from repro.serve import ServingEngine


class RecordingPublisher:
    """In-process ModelPublisher keeping the last published snapshot."""

    def __init__(self):
        self.words = None
        self.version = 0
        self.generations = 0
        self.touches = 0

    def publish(self, model):
        packed = model.packed()
        self.words = packed.words.copy()
        self.version = packed.version
        self.generations += 1
        return self.generations

    def touch(self):
        self.touches += 1


@pytest.fixture(scope="module")
def task():
    return make_prototype_classification(
        "live", num_features=16, num_classes=5, num_train=300, num_test=200,
        seed=0,
    )


def make_experiment(task):
    return RecoveryExperiment(dataset=task, dim=1_000, epochs=2, levels=16,
                              seed=7)


def run_reference(task):
    recorder = RecordingPublisher()
    experiment = make_experiment(task)
    outcome = experiment.attack_and_recover(
        0.2, config=RecoveryConfig(), passes=2, seed=11, publisher=recorder,
    )
    return experiment, outcome, recorder


class TestPublisherContract:
    def test_recording_publisher_satisfies_protocol(self):
        assert isinstance(RecordingPublisher(), ModelPublisher)

    def test_publisher_does_not_change_outcome(self, task):
        bare = make_experiment(task).attack_and_recover(
            0.2, config=RecoveryConfig(), passes=2, seed=11,
        )
        _, published, recorder = run_reference(task)
        assert published.accuracy_trace == bare.accuracy_trace
        assert published.recovered_accuracy == bare.recovered_accuracy
        assert recorder.generations >= 1

    def test_blocks_without_writes_heartbeat_instead(self, task):
        from repro.core.recovery import RobustHDRecovery

        experiment = make_experiment(task)
        recorder = RecordingPublisher()
        recovery = RobustHDRecovery(
            experiment.model, RecoveryConfig(), seed=1, publisher=recorder,
        )
        # _announce runs once per processed block: the first announce
        # publishes the initial model as a generation; an announce with
        # no intervening model write must heartbeat, not republish an
        # identical generation; a write makes the next one publish again.
        recovery._announce()
        recovery._announce()
        assert (recorder.generations, recorder.touches) == (1, 1)
        with experiment.model.writable() as hv:
            hv[0, 0] ^= 1
        recovery._announce()
        assert (recorder.generations, recorder.touches) == (2, 1)


class TestConcurrentBitIdentity:
    def test_concurrent_run_matches_sequential_reference(self, task):
        reference, ref_outcome, recorder = run_reference(task)
        eval_words = reference._eval_packed.words

        concurrent = make_experiment(task)
        engine = ServingEngine(concurrent.classifier, num_workers=2)
        prefix = engine.config.prefix
        stop = threading.Event()
        rounds = 0

        def traffic():
            nonlocal rounds
            while not stop.is_set():
                engine.predict(eval_words)
                rounds += 1

        thread = threading.Thread(target=traffic, daemon=True)
        thread.start()
        try:
            outcome = concurrent.attack_and_recover(
                0.2, config=RecoveryConfig(), passes=2, seed=11,
                publisher=engine.publisher,
            )
            final_predictions = engine.predict(eval_words)
        finally:
            stop.set()
            thread.join()
            engine.stop()

        # The run itself is unperturbed by concurrent serving...
        assert outcome.accuracy_trace == ref_outcome.accuracy_trace
        assert outcome.recovered_accuracy == ref_outcome.recovered_accuracy
        # ...the published generations match the sequential recorder...
        assert engine.publisher.generation - 1 == recorder.generations
        # ...and the last served snapshot is bit-identical: model words
        # (via served predictions on the recovered model) included.
        ref_model = PackedModel(words=recorder.words, dim=1_000,
                                version=recorder.version)
        ref_predictions = np.argmin(ref_model.distances(eval_words), axis=1)
        assert (final_predictions == ref_predictions).all()
        assert rounds >= 1  # traffic genuinely overlapped the recovery
        assert glob.glob(f"/dev/shm/{prefix}*") == []

    def test_requests_after_publish_see_new_generation(self, task):
        experiment = make_experiment(task)
        eval_words = experiment._eval_packed.words
        engine = ServingEngine(experiment.classifier, num_workers=1)
        try:
            engine.predict(eval_words)  # generation 1 traffic
            model = experiment.model
            with model.writable() as hv:
                hv[:, 0] ^= 1  # flip every class's first bit
            engine.publisher.publish(model)
            served = engine.predict(eval_words)
            expected = np.argmin(model.packed().distances(eval_words), axis=1)
            assert (served == expected).all()
            assert engine.trace.last.generation == 2
        finally:
            engine.stop()


class TestDegradedMode:
    def test_stalled_writer_flags_degraded_batches(self, task):
        experiment = make_experiment(task)
        eval_words = experiment._eval_packed.words
        engine = ServingEngine(experiment.classifier, num_workers=1,
                               stall_timeout=0.05)
        try:
            engine.predict(eval_words)
            assert engine.trace.degraded_batches == 0
            # A writer registers (touch), then stalls past the threshold.
            engine.publisher.touch()
            time.sleep(0.2)
            engine.predict(eval_words)
            last = engine.trace.last
            assert last.degraded
            assert last.staleness_s >= 0.05
            # Serving carried on regardless: availability over freshness.
            assert engine.trace.requests_expired == 0
        finally:
            engine.stop()

    def test_idle_engine_without_writer_is_not_degraded(self, task):
        experiment = make_experiment(task)
        eval_words = experiment._eval_packed.words
        engine = ServingEngine(experiment.classifier, num_workers=1,
                               stall_timeout=0.05)
        try:
            time.sleep(0.2)  # far past the stall threshold, but no writer
            engine.predict(eval_words)
            assert engine.trace.degraded_batches == 0
            assert engine.trace.last.staleness_s == 0.0
        finally:
            engine.stop()

    def test_finished_recovery_deregisters_writer(self, task):
        experiment = make_experiment(task)
        eval_words = experiment._eval_packed.words
        engine = ServingEngine(experiment.classifier, num_workers=1,
                               stall_timeout=0.05)
        try:
            experiment.attack_and_recover(
                0.2, config=RecoveryConfig(), passes=1, seed=11,
                publisher=engine.publisher,
            )
            time.sleep(0.2)  # recovery done; its silence is not a stall
            engine.predict(eval_words)
            assert engine.trace.last is not None
            assert not engine.trace.last.degraded
        finally:
            engine.stop()
