"""Sharded-serving tests: plan geometry, combine rules, bit-identity.

The load-bearing properties:

* class- and word-sharded engines produce predictions bit-identical to
  the unsharded engine and the in-process packed path (argmin ties
  included);
* a concurrent attack-and-recover published into a sharded engine ends
  bit-identical to the sequential reference;
* killing one replica of a shard re-routes its work to the surviving
  replica; every test leaves ``/dev/shm`` clean.
"""

import glob
import os
import signal
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier, HDCModel
from repro.datasets.synthetic import make_prototype_classification
from repro.serve import (
    ServingEngine,
    ShardPlan,
    combine_class_tables,
    reduce_partial_tables,
)


def shm_entries(prefix: str) -> list[str]:
    return glob.glob(f"/dev/shm/{prefix}*")


class TestShardPlanGeometry:
    def test_by_class_balanced_larger_first(self):
        plan = ShardPlan.by_class(26, 4)
        assert plan.kind == "class"
        assert plan.bounds == ((0, 7), (7, 14), (14, 20), (20, 26))
        assert plan.num_shards == 4
        assert plan.axis_size == 26

    def test_by_word_splits_ceil_words(self):
        plan = ShardPlan.by_word(1000, 2)  # ceil(1000/64) = 16 words
        assert plan.kind == "word"
        assert plan.bounds == ((0, 8), (8, 16))

    def test_rejects_more_shards_than_items(self):
        with pytest.raises(ValueError, match="cannot split"):
            ShardPlan.by_class(3, 4)

    def test_rejects_bad_kind_and_gaps(self):
        with pytest.raises(ValueError, match="kind"):
            ShardPlan(kind="row", bounds=((0, 1),))
        with pytest.raises(ValueError, match="contiguous"):
            ShardPlan(kind="class", bounds=((0, 2), (3, 4)))
        with pytest.raises(ValueError, match="contiguous"):
            ShardPlan(kind="class", bounds=((0, 2), (2, 2)))
        with pytest.raises(ValueError, match="at least one"):
            ShardPlan(kind="class", bounds=())

    def test_validate_against_model_geometry(self):
        plan = ShardPlan.by_class(8, 2)
        plan.validate(num_classes=8, dim=512)
        with pytest.raises(ValueError, match="covers"):
            plan.validate(num_classes=9, dim=512)
        word_plan = ShardPlan.by_word(512, 2)
        word_plan.validate(num_classes=8, dim=512)
        with pytest.raises(ValueError, match="covers"):
            word_plan.validate(num_classes=8, dim=1024)

    def test_shard_words_and_shapes(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**63, (6, 10), dtype=np.uint64)
        cplan = ShardPlan.by_class(6, 2)
        assert (cplan.shard_words(words, 0) == words[:3]).all()
        assert cplan.shard_shape(6, 640, 1) == (3, 10)
        assert cplan.shard_dim(640, 1) == 640
        wplan = ShardPlan.by_word(640, 2)
        assert (wplan.shard_words(words, 1) == words[:, 5:]).all()
        assert wplan.shard_shape(6, 640, 0) == (6, 5)
        assert wplan.shard_dim(640, 0) == 320

    def test_trailing_word_shard_dim_clips_padding(self):
        # dim=1000 -> 16 words; last shard (words 8..16) spans bits
        # 512..1000, not 512..1024.
        plan = ShardPlan.by_word(1000, 2)
        assert plan.shard_dim(1000, 0) == 512
        assert plan.shard_dim(1000, 1) == 1000 - 512
        # Each shard's word count must round-trip through ceil(dim/64).
        for s in range(2):
            lo, hi = plan.bounds[s]
            assert -(-plan.shard_dim(1000, s) // 64) == hi - lo

    def test_shard_queries(self):
        rng = np.random.default_rng(1)
        q = rng.integers(0, 2**63, (4, 10), dtype=np.uint64)
        assert ShardPlan.by_class(6, 2).shard_queries(q, 1) is q
        assert (
            ShardPlan.by_word(640, 2).shard_queries(q, 0) == q[:, :5]
        ).all()


class TestCombineRules:
    def test_class_concat_preserves_order(self):
        a = np.array([[1, 2]], dtype=np.int64)
        b = np.array([[3]], dtype=np.int64)
        assert (combine_class_tables([a, b]) == [[1, 2, 3]]).all()
        assert combine_class_tables([a]) is a

    @given(st.integers(min_value=1, max_value=9), st.data())
    @settings(deadline=None, max_examples=25)
    def test_reduce_tree_equals_flat_sum(self, parts, data):
        rng = np.random.default_rng(
            data.draw(st.integers(min_value=0, max_value=2**31))
        )
        tables = [
            rng.integers(0, 1000, (5, 3)).astype(np.int64)
            for _ in range(parts)
        ]
        flat = np.sum(np.stack(tables), axis=0)
        assert (reduce_partial_tables(tables) == flat).all()

    def test_reduce_tree_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            reduce_partial_tables([])


@pytest.fixture(scope="module")
def fitted():
    task = make_prototype_classification(
        "shard-serve", num_features=12, num_classes=5, num_train=200,
        num_test=64, seed=13,
    )
    encoder = Encoder(num_features=12, dim=1000, levels=8, seed=14)
    clf = HDCClassifier(encoder, num_classes=5, epochs=1, seed=15).fit(
        task.train_x, task.train_y
    )
    return task, clf


def plans_for(clf):
    return [
        ShardPlan.by_class(clf.model.num_classes, 2),
        ShardPlan.by_word(clf.encoder.dim, 2),
        ShardPlan.by_word(clf.encoder.dim, 3),
    ]


class TestShardedServing:
    def test_sharded_predictions_bit_identical(self, fitted):
        task, clf = fitted
        reference = clf.predict(task.test_x)
        words = clf.encoder.encode_packed(task.test_x).words
        for plan in plans_for(clf):
            engine = ServingEngine(
                clf, num_workers=plan.num_shards, shard_plan=plan
            )
            prefix = engine.config.prefix
            try:
                assert (engine.predict(words) == reference).all()
            finally:
                engine.stop()
            assert shm_entries(prefix) == []

    def test_sharded_replicas_bit_identical(self, fitted):
        """Two replicas per shard: dispatch spreads, results agree."""
        task, clf = fitted
        reference = clf.predict(task.test_x)
        words = clf.encoder.encode_packed(task.test_x).words
        plan = ShardPlan.by_class(clf.model.num_classes, 2)
        with ServingEngine(clf, num_workers=4, shard_plan=plan) as engine:
            for _ in range(3):
                assert (engine.predict(words) == reference).all()

    def test_sharded_feature_requests(self, fitted):
        task, clf = fitted
        reference = clf.predict(task.test_x)
        for plan in plans_for(clf):
            engine = ServingEngine(
                clf, num_workers=plan.num_shards, shard_plan=plan
            )
            try:
                assert (
                    engine.predict_features(task.test_x) == reference
                ).all()
            finally:
                engine.stop()

    def test_worker_count_must_be_multiple_of_shards(self, fitted):
        _, clf = fitted
        plan = ShardPlan.by_class(clf.model.num_classes, 2)
        with pytest.raises(ValueError, match="multiple"):
            ServingEngine(clf, num_workers=3, shard_plan=plan)

    def test_plan_must_match_model(self, fitted):
        _, clf = fitted
        with pytest.raises(ValueError, match="covers"):
            ServingEngine(
                clf, num_workers=2,
                shard_plan=ShardPlan.by_class(clf.model.num_classes + 1, 2),
            )

    def test_sharded_deadline_expiry(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x[:4]).words
        plan = ShardPlan.by_class(clf.model.num_classes, 2)
        with ServingEngine(clf, num_workers=2, shard_plan=plan) as engine:
            engine.result(engine.submit(words))  # warm both workers
            result = engine.result(engine.submit(words, deadline=1e-9))
        assert result.expired and result.predictions is None

    def test_sharded_trace_records_shard_and_wait(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x).words
        plan = ShardPlan.by_word(clf.encoder.dim, 2)
        with ServingEngine(clf, num_workers=2, shard_plan=plan) as engine:
            engine.predict(words)
            events = list(engine.trace)
        shards_seen = {event.shard for event in events}
        assert shards_seen == {0, 1}
        assert all(event.dispatch_wait_s >= 0.0 for event in events)
        # A word shard scans its word columns only: bytes per query is
        # the shard's slice of the model, not the whole model.
        full_bytes = clf.model.packed().words.nbytes
        for event in events:
            assert 0 < event.bytes_scanned // max(1, event.queries) \
                < full_bytes


class TestShardedCrashRecovery:
    def test_replica_crash_reroutes_to_survivor(self, fitted):
        task, clf = fitted
        reference = clf.predict(task.test_x)
        words = clf.encoder.encode_packed(task.test_x).words
        plan = ShardPlan.by_class(clf.model.num_classes, 2)
        engine = ServingEngine(clf, num_workers=4, shard_plan=plan)
        prefix = engine.config.prefix
        try:
            assert (engine.predict(words) == reference).all()
            # Kill one replica of shard 0 (workers 0 and 2 serve shard 0).
            os.kill(engine.workers[0].pid, signal.SIGKILL)
            time.sleep(0.05)
            assert (engine.predict(words) == reference).all()
        finally:
            engine.stop()
        assert shm_entries(prefix) == []

    def test_shard_with_no_replica_fails_requests(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x[:4]).words
        plan = ShardPlan.by_class(clf.model.num_classes, 2)
        engine = ServingEngine(clf, num_workers=2, shard_plan=plan,
                               ring_slots=16)
        try:
            engine.result(engine.submit(words))  # warm-up round-trip
            os.kill(engine.workers[1].pid, signal.SIGKILL)
            time.sleep(0.05)
            result = engine.result(engine.submit(words), timeout=10.0)
            assert result.expired and not result.ok
        finally:
            engine.stop()


class TestShardedLiveRecovery:
    @pytest.mark.parametrize("kind", ["class", "word"])
    def test_concurrent_attack_and_recover_bit_identical(self, kind):
        """The tentpole equivalence: attack-and-recover published into a
        *sharded* live engine ends bit-identical to the sequential
        reference — final model words and served predictions."""
        from repro.core.pipeline import RecoveryExperiment
        from repro.core.recovery import RecoveryConfig

        task = make_prototype_classification(
            "shard-recover", num_features=12, num_classes=4,
            num_train=160, num_test=80, seed=21,
        )

        class Recorder:
            def __init__(self):
                self.words = None
                self.generations = 0

            def publish(self, model):
                packed = model.packed()
                self.words = packed.words.copy()
                self.generations += 1
                return self.generations

            def touch(self):
                pass

        def experiment():
            return RecoveryExperiment(dataset=task, dim=1000, epochs=2,
                                      levels=8, seed=22)

        recorder = Recorder()
        reference = experiment()
        ref_outcome = reference.attack_and_recover(
            0.15, config=RecoveryConfig(), passes=1, seed=23,
            publisher=recorder,
        )
        eval_words = reference._eval_packed.words

        concurrent = experiment()
        plan = (
            ShardPlan.by_class(concurrent.classifier.model.num_classes, 2)
            if kind == "class"
            else ShardPlan.by_word(1000, 2)
        )
        engine = ServingEngine(
            concurrent.classifier, num_workers=2, shard_plan=plan
        )
        prefix = engine.config.prefix
        try:
            outcome = concurrent.attack_and_recover(
                0.15, config=RecoveryConfig(), passes=1, seed=23,
                publisher=engine.publisher,
            )
            served = engine.predict(eval_words)
        finally:
            engine.stop()
        assert shm_entries(prefix) == []
        assert outcome.accuracy_trace == ref_outcome.accuracy_trace
        reference_predictions = np.argmin(
            np.bitwise_count(
                recorder.words[None, :, :] ^ eval_words[:, None, :]
            ).sum(axis=2),
            axis=1,
        ).astype(np.int64)
        assert (served == reference_predictions).all()


class TestShardedPublisher:
    def test_generation_segments_per_shard(self, fitted):
        """Each published generation materialises one segment per shard;
        retire unlinks the whole set."""
        task, clf = fitted
        plan = ShardPlan.by_word(clf.encoder.dim, 2)
        engine = ServingEngine(clf, num_workers=2, shard_plan=plan)
        prefix = engine.config.prefix
        try:
            gen_segments = [
                e for e in shm_entries(prefix) if "-g1-" in e
            ]
            assert len(gen_segments) == 2
            model = HDCModel(class_hv=clf.model.class_hv.copy())
            for _ in range(4):  # publish past retire_lag
                with model.writable() as hv:
                    hv[0, 0] ^= 1
                engine.publisher.publish(model)
            names = shm_entries(prefix)
            assert not any("-g1-" in e for e in names)  # retired set gone
            words = clf.encoder.encode_packed(task.test_x).words
            served = engine.predict(words)
            expected = np.argmin(
                model.packed().distances(words), axis=1
            ).astype(np.int64)
            assert (served == expected).all()
        finally:
            engine.stop()
        assert shm_entries(prefix) == []
