"""Gateway end-to-end tests: multi-tenant serving over TCP, admission
control shedding, per-tenant hot-swap isolation, and worker-SIGKILL
re-dispatch underneath a live gateway."""

import asyncio
import glob
import os
import signal
import time

import numpy as np
import pytest

from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier
from repro.datasets.synthetic import make_prototype_classification
from repro.serve import (
    AsyncGatewayClient,
    GatewayClient,
    GatewayRejected,
    ServingEngine,
    TenantRegistry,
)
from repro.serve.gateway import AdmissionController, GatewayServer, TokenBucket
from repro.serve.protocol import RejectCode


def _fitted(seed, num_features=10, dim=512):
    task = make_prototype_classification(
        f"gw{seed}", num_features=num_features, num_classes=4,
        num_train=120, num_test=32, seed=seed,
    )
    encoder = Encoder(
        num_features=num_features, dim=dim, levels=8, seed=seed + 1
    )
    clf = HDCClassifier(
        encoder, num_classes=4, epochs=1, seed=seed + 2
    ).fit(task.train_x, task.train_y)
    return task, clf


@pytest.fixture(scope="module")
def stack():
    """Two tenants behind one engine behind one gateway."""
    task_a, clf_a = _fitted(21)
    task_b, clf_b = _fitted(33)
    registry = TenantRegistry()
    registry.add("alpha", clf_a)
    registry.add("beta", clf_b)
    engine = ServingEngine(registry, num_workers=2, ring_slots=32)
    server = GatewayServer(engine).start()
    yield {
        "engine": engine,
        "server": server,
        "alpha": (task_a, clf_a),
        "beta": (task_b, clf_b),
    }
    server.stop()
    engine.stop()


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        now = time.monotonic()
        assert bucket.try_take(now)
        assert bucket.try_take(now)
        assert not bucket.try_take(now)  # burst exhausted
        assert bucket.try_take(now + 0.2)  # 0.2s * 10/s = 2 tokens back

    def test_validation(self):
        with pytest.raises(ValueError, match="rate and burst"):
            TokenBucket(rate=0, burst=1)


class TestAdmissionController:
    def test_order_of_refusals(self):
        ctrl = AdmissionController(
            ["a"], max_inflight=1, rate_limit=1000.0
        )
        assert ctrl.admit("ghost") == RejectCode.UNKNOWN_TENANT
        assert ctrl.admit("a") is None
        assert ctrl.admit("a") == RejectCode.OVERLOADED  # in-flight cap
        ctrl.release()
        assert ctrl.admit("a") is None
        ctrl.release()
        ctrl.drain()
        assert ctrl.admit("a") == RejectCode.SHUTTING_DOWN
        assert ctrl.shed[RejectCode.UNKNOWN_TENANT] == 1
        assert ctrl.shed_total == 3
        assert ctrl.admitted == 2

    def test_rate_limit_shed(self):
        ctrl = AdmissionController(
            ["a"], max_inflight=100, rate_limit=5.0, burst=2.0
        )
        codes = [ctrl.admit("a") for _ in range(4)]
        assert codes[:2] == [None, None]
        assert RejectCode.RATE_LIMITED in codes[2:]


class TestGatewayServing:
    def test_sync_client_both_tenants_match_references(self, stack):
        server = stack["server"]
        with GatewayClient("127.0.0.1", server.port) as client:
            client.ping()
            for name in ("alpha", "beta"):
                task, clf = stack[name]
                words = clf.encoder.encode_packed(task.test_x[:8]).words
                np.testing.assert_array_equal(
                    client.predict(words, tenant=name),
                    clf.predict(task.test_x[:8]),
                )
                np.testing.assert_array_equal(
                    client.predict(
                        task.test_x[:8], tenant=name, features=True
                    ),
                    clf.predict(task.test_x[:8]),
                )

    def test_default_tenant_is_first(self, stack):
        server = stack["server"]
        task, clf = stack["alpha"]
        words = clf.encoder.encode_packed(task.test_x[:4]).words
        with GatewayClient("127.0.0.1", server.port) as client:
            np.testing.assert_array_equal(
                client.predict(words),  # no tenant named
                clf.predict(task.test_x[:4]),
            )

    def test_unknown_tenant_typed_reject(self, stack):
        server = stack["server"]
        task, clf = stack["alpha"]
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        with GatewayClient("127.0.0.1", server.port) as client:
            with pytest.raises(GatewayRejected) as info:
                client.predict(words, tenant="ghost")
        assert info.value.code == RejectCode.UNKNOWN_TENANT

    def test_async_client_pipelines_mixed_tenants(self, stack):
        server = stack["server"]

        async def run():
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", server.port
            )
            coros = []
            expected = []
            for name in ("alpha", "beta") * 4:
                task, clf = stack[name]
                words = clf.encoder.encode_packed(task.test_x[:4]).words
                coros.append(client.predict(words, tenant=name))
                expected.append(clf.predict(task.test_x[:4]))
            results = await asyncio.gather(*coros)
            await client.close()
            return results, expected

        results, expected = asyncio.run(run())
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got, want)

    def test_hot_swap_one_tenant_leaves_other_untouched(self, stack):
        """Publishing generations for beta never perturbs alpha."""
        server = stack["server"]
        engine = stack["engine"]
        task_a, clf_a = stack["alpha"]
        task_b, clf_b = stack["beta"]
        words_a = clf_a.encoder.encode_packed(task_a.test_x[:8]).words
        ref_a = clf_a.predict(task_a.test_x[:8])
        publisher = engine.publisher_for("beta")
        model_b = clf_b._require_model()
        with GatewayClient("127.0.0.1", server.port) as client:
            for _ in range(3):
                publisher.publish(model_b)  # hot-swap beta repeatedly
                np.testing.assert_array_equal(
                    client.predict(words_a, tenant="alpha"), ref_a
                )
            # Beta itself still serves correctly on its newest snapshot.
            words_b = clf_b.encoder.encode_packed(task_b.test_x[:8]).words
            np.testing.assert_array_equal(
                client.predict(words_b, tenant="beta"),
                clf_b.predict(task_b.test_x[:8]),
            )
        assert engine.publisher_for("alpha").generation == 1
        assert publisher.generation > 1


class TestShedding:
    def test_zero_shed_at_low_load(self):
        task, clf = _fitted(55)
        engine = ServingEngine(clf, num_workers=1)
        server = GatewayServer(engine, rate_limit=10_000.0).start()
        words = clf.encoder.encode_packed(task.test_x[:4]).words
        try:
            with GatewayClient("127.0.0.1", server.port) as client:
                for _ in range(20):
                    client.predict(words)
            assert server.admission.shed_total == 0
            assert server.admission.admitted == 20
        finally:
            server.stop()
            engine.stop()

    def test_rate_limit_sheds_typed(self):
        task, clf = _fitted(56)
        engine = ServingEngine(clf, num_workers=1)
        server = GatewayServer(
            engine, rate_limit=1.0, burst=2.0
        ).start()
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        rejected = []
        try:
            with GatewayClient("127.0.0.1", server.port) as client:
                for _ in range(6):
                    try:
                        client.predict(words)
                    except GatewayRejected as exc:
                        rejected.append(exc.code)
            assert rejected, "expected the 2-token burst to exhaust"
            assert set(rejected) == {RejectCode.RATE_LIMITED}
            assert (
                server.admission.shed[RejectCode.RATE_LIMITED]
                == len(rejected)
            )
        finally:
            server.stop()
            engine.stop()

    def test_overload_sheds_when_inflight_cap_hit(self):
        task, clf = _fitted(57)
        # Tiny in-flight cap + async pipelining = guaranteed overlap.
        engine = ServingEngine(clf, num_workers=1, ring_slots=2)
        server = GatewayServer(engine, max_inflight=1).start()
        words = clf.encoder.encode_packed(task.test_x[:4]).words

        async def flood():
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", server.port
            )
            outcomes = await asyncio.gather(
                *[client.predict(words) for _ in range(30)],
                return_exceptions=True,
            )
            await client.close()
            return outcomes

        try:
            outcomes = asyncio.run(flood())
            served = [o for o in outcomes if isinstance(o, np.ndarray)]
            shed = [o for o in outcomes if isinstance(o, GatewayRejected)]
            assert served, "some requests must get through"
            for got in served:
                np.testing.assert_array_equal(
                    got, clf.predict(task.test_x[:4])
                )
            assert shed, "the in-flight cap must shed under pipelining"
            assert {exc.code for exc in shed} == {RejectCode.OVERLOADED}
            assert (
                server.admission.shed[RejectCode.OVERLOADED] == len(shed)
            )
        finally:
            server.stop()
            engine.stop()

    def test_draining_gateway_sheds_shutting_down(self):
        task, clf = _fitted(58)
        engine = ServingEngine(clf, num_workers=1)
        server = GatewayServer(engine).start()
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        try:
            with GatewayClient("127.0.0.1", server.port) as client:
                client.predict(words)
                server.admission.drain()
                with pytest.raises(GatewayRejected) as info:
                    client.predict(words)
            assert info.value.code == RejectCode.SHUTTING_DOWN
        finally:
            server.stop()
            engine.stop()


class TestCrashUnderGateway:
    def test_sigkilled_worker_requests_redispatch_through_gateway(self):
        """SIGKILL one worker mid-flight; the gateway still answers.

        The engine re-routes the dead worker's unserved ring entries to
        the survivor, so every admitted gateway request resolves with
        correct predictions — no client ever hangs.
        """
        task, clf = _fitted(59)
        engine = ServingEngine(clf, num_workers=2, ring_slots=64)
        server = GatewayServer(engine).start()
        words = clf.encoder.encode_packed(task.test_x[:4]).words
        expected = clf.predict(task.test_x[:4])
        prefix = engine.config.prefix

        async def drive():
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", server.port
            )
            # Killing after the submits are in flight: some land on the
            # doomed worker and must be re-dispatched.
            first = asyncio.gather(
                *[client.predict(words) for _ in range(24)]
            )
            os.kill(engine.workers[0].pid, signal.SIGKILL)
            results = list(await first)
            # The gateway keeps serving on the survivor afterwards.
            results.extend(await asyncio.gather(
                *[client.predict(words) for _ in range(8)]
            ))
            await client.close()
            return results

        try:
            results = drive_results = asyncio.run(drive())
            assert len(drive_results) == 32
            for got in results:
                np.testing.assert_array_equal(got, expected)
        finally:
            server.stop()
            engine.stop()
        assert glob.glob(f"/dev/shm/{prefix}*") == []


class TestGatewayLifecycle:
    def test_stop_is_idempotent(self):
        task, clf = _fitted(61)
        engine = ServingEngine(clf, num_workers=1)
        server = GatewayServer(engine).start()
        server.stop()
        server.stop()
        engine.stop()

    def test_port_zero_picks_free_port(self, stack):
        assert stack["server"].port > 0
