"""Gateway end-to-end tests: multi-tenant serving over TCP, admission
control shedding, per-tenant hot-swap isolation, and worker-SIGKILL
re-dispatch underneath a live gateway."""

import asyncio
import glob
import os
import signal
import time

import numpy as np
import pytest

from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier
from repro.datasets.synthetic import make_prototype_classification
from repro.serve import (
    AsyncGatewayClient,
    GatewayClient,
    GatewayRejected,
    ServingEngine,
    TenantRegistry,
)
from repro.serve.gateway import AdmissionController, GatewayServer, TokenBucket
from repro.serve.protocol import RejectCode


def _fitted(seed, num_features=10, dim=512):
    task = make_prototype_classification(
        f"gw{seed}", num_features=num_features, num_classes=4,
        num_train=120, num_test=32, seed=seed,
    )
    encoder = Encoder(
        num_features=num_features, dim=dim, levels=8, seed=seed + 1
    )
    clf = HDCClassifier(
        encoder, num_classes=4, epochs=1, seed=seed + 2
    ).fit(task.train_x, task.train_y)
    return task, clf


@pytest.fixture(scope="module")
def stack():
    """Two tenants behind one engine behind one gateway."""
    task_a, clf_a = _fitted(21)
    task_b, clf_b = _fitted(33)
    registry = TenantRegistry()
    registry.add("alpha", clf_a)
    registry.add("beta", clf_b)
    engine = ServingEngine(registry, num_workers=2, ring_slots=32)
    server = GatewayServer(engine).start()
    yield {
        "engine": engine,
        "server": server,
        "alpha": (task_a, clf_a),
        "beta": (task_b, clf_b),
    }
    server.stop()
    engine.stop()


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        now = time.monotonic()
        assert bucket.try_take(now)
        assert bucket.try_take(now)
        assert not bucket.try_take(now)  # burst exhausted
        assert bucket.try_take(now + 0.2)  # 0.2s * 10/s = 2 tokens back

    def test_retry_after_refills_before_computing(self):
        bucket = TokenBucket(rate=10.0, burst=1.0)
        now = time.monotonic()
        assert bucket.try_take(now)
        assert not bucket.try_take(now)
        # Freshly drained: one token is 100 ms away.
        assert bucket.retry_after_s(now) == pytest.approx(0.1)
        # 50 ms later half a token has refilled -- the hint must track
        # the refill instead of re-quoting the stale 100 ms peek.
        assert bucket.retry_after_s(now + 0.05) == pytest.approx(0.05)
        # Once a whole token is back the hint clamps to zero.
        assert bucket.retry_after_s(now + 0.2) == 0.0
        assert bucket.try_take(now + 0.2)

    def test_validation(self):
        with pytest.raises(ValueError, match="rate and burst"):
            TokenBucket(rate=0, burst=1)


class TestAdmissionController:
    def test_order_of_refusals(self):
        ctrl = AdmissionController(
            ["a"], max_inflight=1, rate_limit=1000.0
        )
        assert ctrl.admit("ghost") == RejectCode.UNKNOWN_TENANT
        assert ctrl.admit("a") is None
        assert ctrl.admit("a") == RejectCode.OVERLOADED  # in-flight cap
        ctrl.release()
        assert ctrl.admit("a") is None
        ctrl.release()
        ctrl.drain()
        assert ctrl.admit("a") == RejectCode.SHUTTING_DOWN
        assert ctrl.shed[RejectCode.UNKNOWN_TENANT] == 1
        assert ctrl.shed_total == 3
        assert ctrl.admitted == 2

    def test_rate_limit_shed(self):
        ctrl = AdmissionController(
            ["a"], max_inflight=100, rate_limit=5.0, burst=2.0
        )
        codes = [ctrl.admit("a") for _ in range(4)]
        assert codes[:2] == [None, None]
        assert RejectCode.RATE_LIMITED in codes[2:]


class TestGatewayServing:
    def test_sync_client_both_tenants_match_references(self, stack):
        server = stack["server"]
        with GatewayClient("127.0.0.1", server.port) as client:
            client.ping()
            for name in ("alpha", "beta"):
                task, clf = stack[name]
                words = clf.encoder.encode_packed(task.test_x[:8]).words
                np.testing.assert_array_equal(
                    client.predict(words, tenant=name),
                    clf.predict(task.test_x[:8]),
                )
                np.testing.assert_array_equal(
                    client.predict(
                        task.test_x[:8], tenant=name, features=True
                    ),
                    clf.predict(task.test_x[:8]),
                )

    def test_default_tenant_is_first(self, stack):
        server = stack["server"]
        task, clf = stack["alpha"]
        words = clf.encoder.encode_packed(task.test_x[:4]).words
        with GatewayClient("127.0.0.1", server.port) as client:
            np.testing.assert_array_equal(
                client.predict(words),  # no tenant named
                clf.predict(task.test_x[:4]),
            )

    def test_unknown_tenant_typed_reject(self, stack):
        server = stack["server"]
        task, clf = stack["alpha"]
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        with GatewayClient("127.0.0.1", server.port) as client:
            with pytest.raises(GatewayRejected) as info:
                client.predict(words, tenant="ghost")
        assert info.value.code == RejectCode.UNKNOWN_TENANT

    def test_async_client_pipelines_mixed_tenants(self, stack):
        server = stack["server"]

        async def run():
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", server.port
            )
            coros = []
            expected = []
            for name in ("alpha", "beta") * 4:
                task, clf = stack[name]
                words = clf.encoder.encode_packed(task.test_x[:4]).words
                coros.append(client.predict(words, tenant=name))
                expected.append(clf.predict(task.test_x[:4]))
            results = await asyncio.gather(*coros)
            await client.close()
            return results, expected

        results, expected = asyncio.run(run())
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got, want)

    def test_hot_swap_one_tenant_leaves_other_untouched(self, stack):
        """Publishing generations for beta never perturbs alpha."""
        server = stack["server"]
        engine = stack["engine"]
        task_a, clf_a = stack["alpha"]
        task_b, clf_b = stack["beta"]
        words_a = clf_a.encoder.encode_packed(task_a.test_x[:8]).words
        ref_a = clf_a.predict(task_a.test_x[:8])
        publisher = engine.publisher_for("beta")
        model_b = clf_b._require_model()
        with GatewayClient("127.0.0.1", server.port) as client:
            for _ in range(3):
                publisher.publish(model_b)  # hot-swap beta repeatedly
                np.testing.assert_array_equal(
                    client.predict(words_a, tenant="alpha"), ref_a
                )
            # Beta itself still serves correctly on its newest snapshot.
            words_b = clf_b.encoder.encode_packed(task_b.test_x[:8]).words
            np.testing.assert_array_equal(
                client.predict(words_b, tenant="beta"),
                clf_b.predict(task_b.test_x[:8]),
            )
        assert engine.publisher_for("alpha").generation == 1
        assert publisher.generation > 1


class TestShedding:
    def test_zero_shed_at_low_load(self):
        task, clf = _fitted(55)
        engine = ServingEngine(clf, num_workers=1)
        server = GatewayServer(engine, rate_limit=10_000.0).start()
        words = clf.encoder.encode_packed(task.test_x[:4]).words
        try:
            with GatewayClient("127.0.0.1", server.port) as client:
                for _ in range(20):
                    client.predict(words)
            assert server.admission.shed_total == 0
            assert server.admission.admitted == 20
        finally:
            server.stop()
            engine.stop()

    def test_rate_limit_sheds_typed(self):
        task, clf = _fitted(56)
        engine = ServingEngine(clf, num_workers=1)
        server = GatewayServer(
            engine, rate_limit=1.0, burst=2.0
        ).start()
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        rejected = []
        try:
            with GatewayClient("127.0.0.1", server.port) as client:
                for _ in range(6):
                    try:
                        client.predict(words)
                    except GatewayRejected as exc:
                        rejected.append(exc.code)
            assert rejected, "expected the 2-token burst to exhaust"
            assert set(rejected) == {RejectCode.RATE_LIMITED}
            assert (
                server.admission.shed[RejectCode.RATE_LIMITED]
                == len(rejected)
            )
        finally:
            server.stop()
            engine.stop()

    def test_overload_sheds_when_inflight_cap_hit(self):
        task, clf = _fitted(57)
        # Tiny in-flight cap + async pipelining = guaranteed overlap.
        engine = ServingEngine(clf, num_workers=1, ring_slots=2)
        server = GatewayServer(engine, max_inflight=1).start()
        words = clf.encoder.encode_packed(task.test_x[:4]).words

        async def flood():
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", server.port
            )
            outcomes = await asyncio.gather(
                *[client.predict(words) for _ in range(30)],
                return_exceptions=True,
            )
            await client.close()
            return outcomes

        try:
            outcomes = asyncio.run(flood())
            served = [o for o in outcomes if isinstance(o, np.ndarray)]
            shed = [o for o in outcomes if isinstance(o, GatewayRejected)]
            assert served, "some requests must get through"
            for got in served:
                np.testing.assert_array_equal(
                    got, clf.predict(task.test_x[:4])
                )
            assert shed, "the in-flight cap must shed under pipelining"
            assert {exc.code for exc in shed} == {RejectCode.OVERLOADED}
            assert (
                server.admission.shed[RejectCode.OVERLOADED] == len(shed)
            )
        finally:
            server.stop()
            engine.stop()

    def test_draining_gateway_sheds_shutting_down(self):
        task, clf = _fitted(58)
        engine = ServingEngine(clf, num_workers=1)
        server = GatewayServer(engine).start()
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        try:
            with GatewayClient("127.0.0.1", server.port) as client:
                client.predict(words)
                server.admission.drain()
                with pytest.raises(GatewayRejected) as info:
                    client.predict(words)
            assert info.value.code == RejectCode.SHUTTING_DOWN
        finally:
            server.stop()
            engine.stop()


class TestCrashUnderGateway:
    def test_sigkilled_worker_requests_redispatch_through_gateway(self):
        """SIGKILL one worker mid-flight; the gateway still answers.

        The engine re-routes the dead worker's unserved ring entries to
        the survivor, so every admitted gateway request resolves with
        correct predictions — no client ever hangs.
        """
        task, clf = _fitted(59)
        engine = ServingEngine(clf, num_workers=2, ring_slots=64)
        server = GatewayServer(engine).start()
        words = clf.encoder.encode_packed(task.test_x[:4]).words
        expected = clf.predict(task.test_x[:4])
        prefix = engine.config.prefix

        async def drive():
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", server.port
            )
            # Killing after the submits are in flight: some land on the
            # doomed worker and must be re-dispatched.
            first = asyncio.gather(
                *[client.predict(words) for _ in range(24)]
            )
            os.kill(engine.workers[0].pid, signal.SIGKILL)
            results = list(await first)
            # The gateway keeps serving on the survivor afterwards.
            results.extend(await asyncio.gather(
                *[client.predict(words) for _ in range(8)]
            ))
            await client.close()
            return results

        try:
            results = drive_results = asyncio.run(drive())
            assert len(drive_results) == 32
            for got in results:
                np.testing.assert_array_equal(got, expected)
        finally:
            server.stop()
            engine.stop()
        assert glob.glob(f"/dev/shm/{prefix}*") == []


class TestGatewayLifecycle:
    def test_stop_is_idempotent(self):
        task, clf = _fitted(61)
        engine = ServingEngine(clf, num_workers=1)
        server = GatewayServer(engine).start()
        server.stop()
        server.stop()
        engine.stop()

    def test_port_zero_picks_free_port(self, stack):
        assert stack["server"].port > 0


class TestBatchedSubmit:
    def test_sync_batch_both_tenants_match_references(self, stack):
        server = stack["server"]
        with GatewayClient("127.0.0.1", server.port) as client:
            for name in ("alpha", "beta"):
                task, clf = stack[name]
                words = clf.encoder.encode_packed(task.test_x[:6]).words
                expected = clf.predict(task.test_x[:6])
                results = client.submit_batch(
                    [words, words[:3], words], tenant=name
                )
                assert len(results) == 3
                np.testing.assert_array_equal(results[0], expected)
                np.testing.assert_array_equal(results[1], expected[:3])
                np.testing.assert_array_equal(results[2], expected)

    def test_sync_batch_features(self, stack):
        server = stack["server"]
        task, clf = stack["alpha"]
        expected = clf.predict(task.test_x[:4])
        with GatewayClient("127.0.0.1", server.port) as client:
            results = client.submit_batch(
                [task.test_x[:4], task.test_x[:2]],
                tenant="alpha", features=True,
            )
        np.testing.assert_array_equal(results[0], expected)
        np.testing.assert_array_equal(results[1], expected[:2])

    def test_async_batch_over_credited_connection(self, stack):
        server = stack["server"]
        task, clf = stack["beta"]
        words = clf.encoder.encode_packed(task.test_x[:8]).words
        expected = clf.predict(task.test_x[:8])

        async def go():
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", server.port, credited=True
            )
            try:
                assert client.credited
                assert client.window > 0
                batches = await asyncio.gather(*[
                    client.submit_batch(
                        [words] * 4, tenant="beta"
                    )
                    for _ in range(5)
                ])
                return batches
            finally:
                await client.close()

        for batch in asyncio.run(go()):
            assert len(batch) == 4
            for got in batch:
                np.testing.assert_array_equal(got, expected)

    def test_batch_merges_past_engine_query_cap(self, stack):
        """More total rows than max_queries_per_request still serves:
        the gateway splits the batch into capped merged runs."""
        server = stack["server"]
        engine = stack["engine"]
        task, clf = stack["alpha"]
        words = clf.encoder.encode_packed(task.test_x[:8]).words
        expected = clf.predict(task.test_x[:8])
        count = (engine.max_queries_per_request // words.shape[0]) + 3
        with GatewayClient("127.0.0.1", server.port) as client:
            results = client.submit_batch(
                [words] * count, tenant="alpha"
            )
        assert len(results) == count
        for got in results:
            np.testing.assert_array_equal(got, expected)

    def test_batch_unknown_tenant_rejects_every_entry(self, stack):
        server = stack["server"]
        task, clf = stack["alpha"]
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        with GatewayClient("127.0.0.1", server.port) as client:
            outcomes = client.submit_batch(
                [words, words], tenant="ghost", return_exceptions=True
            )
        assert len(outcomes) == 2
        for exc in outcomes:
            assert isinstance(exc, GatewayRejected)
            assert exc.code == RejectCode.UNKNOWN_TENANT

    def test_batch_raises_first_failure_without_flag(self, stack):
        server = stack["server"]
        task, clf = stack["alpha"]
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        with GatewayClient("127.0.0.1", server.port) as client:
            with pytest.raises(GatewayRejected) as excinfo:
                client.submit_batch([words], tenant="ghost")
        assert excinfo.value.code == RejectCode.UNKNOWN_TENANT


class TestCreditBackpressure:
    def test_flooding_credited_client_paused_not_shed(self):
        task, clf = _fitted(58)
        engine = ServingEngine(clf, num_workers=1, ring_slots=4)
        server = GatewayServer(
            engine, max_inflight=2, connection_window=2
        ).start()
        words = clf.encoder.encode_packed(task.test_x[:4]).words
        expected = clf.predict(task.test_x[:4])

        async def flood():
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", server.port, credited=True
            )
            try:
                assert client.window == 2
                results = await asyncio.gather(*[
                    client.predict(words) for _ in range(30)
                ])
                return results, client.credit_waits
            finally:
                await client.close()

        try:
            results, waits = asyncio.run(flood())
            assert len(results) == 30
            for got in results:
                np.testing.assert_array_equal(got, expected)
            assert waits > 0, "flood never blocked on credits"
            assert server.admission.shed_total == 0, \
                "credit-respecting client must be paused, never shed"
        finally:
            server.stop()
            engine.stop()

    def test_window_overrun_gets_typed_reject_and_refund(self):
        """A cooperative connection that ignores its window gets a
        typed OVERLOADED reject plus a CREDIT refund — the connection
        survives and well-behaved traffic still flows."""
        from repro.serve.protocol import (
            FLAG_CREDIT,
            Frame,
            FrameDecoder,
            FrameKind,
            decode_credit,
            decode_reject,
            encode_frame,
            encode_submit_batch,
        )

        task, clf = _fitted(59)
        engine = ServingEngine(clf, num_workers=1, ring_slots=4)
        server = GatewayServer(
            engine, max_inflight=2, connection_window=2
        ).start()
        words = clf.encoder.encode_packed(task.test_x[:2]).words

        async def overrun():
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            decoder = FrameDecoder()

            async def read_frames(n):
                frames = []
                while len(frames) < n:
                    frames.extend(decoder.feed(await reader.read(1 << 16)))
                return frames

            try:
                writer.write(encode_frame(Frame(
                    FrameKind.PING, trace_id=1, flags=FLAG_CREDIT
                )))
                await writer.drain()
                credit, pong = await read_frames(2)
                assert credit.kind == FrameKind.CREDIT
                window = decode_credit(credit.payload)
                assert pong.kind == FrameKind.PONG

                # Deliberately overrun: one batch bigger than the window.
                writer.write(encode_frame(Frame(
                    FrameKind.SUBMIT_BATCH,
                    trace_id=2,
                    payload=encode_submit_batch([words] * (window + 3)),
                )))
                await writer.drain()
                refund, reject = await read_frames(2)
                assert refund.kind == FrameKind.CREDIT
                assert decode_credit(refund.payload) == window + 3
                assert reject.kind == FrameKind.REJECT
                code, _, _ = decode_reject(reject.payload)
                assert code == int(RejectCode.OVERLOADED)

                # The connection is still serviceable afterwards.
                writer.write(encode_frame(Frame(
                    FrameKind.SUBMIT_BATCH,
                    trace_id=3,
                    payload=encode_submit_batch([words]),
                )))
                await writer.drain()
                frames = await read_frames(2)
                kinds = [f.kind for f in frames]
                assert FrameKind.RESPONSE_BATCH in kinds
            finally:
                writer.close()

        try:
            asyncio.run(overrun())
        finally:
            server.stop()
            engine.stop()

    def test_rate_limited_reject_carries_retry_hint(self):
        task, clf = _fitted(60)
        engine = ServingEngine(clf, num_workers=1)
        server = GatewayServer(engine, rate_limit=2.0, burst=1.0).start()
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        try:
            with GatewayClient("127.0.0.1", server.port) as client:
                hint = None
                for _ in range(4):
                    try:
                        client.predict(words)
                    except GatewayRejected as exc:
                        assert exc.code == RejectCode.RATE_LIMITED
                        hint = exc.retry_after_ms
                        break
                assert hint is not None, "bucket never exhausted"
                # 2 tokens/s refill => next token within ~500 ms.
                assert 0 < hint <= 600
                assert "retry after" in str(
                    GatewayRejected(int(RejectCode.RATE_LIMITED),
                                    "x", retry_after_ms=hint)
                )
        finally:
            server.stop()
            engine.stop()


class TestAdmissionBatchOps:
    def test_admit_many_mixed_outcomes(self):
        ctrl = AdmissionController(["a"], max_inflight=2, rate_limit=None)
        codes = ctrl.admit_many("a", 4)
        assert codes[:2] == [None, None]
        assert codes[2:] == [RejectCode.OVERLOADED] * 2
        assert ctrl.inflight == 2
        ctrl.release(count=2)
        assert ctrl.inflight == 0
        assert ctrl.admit_many("ghost", 3) == \
            [RejectCode.UNKNOWN_TENANT] * 3

    def test_reserve_window_carves_admission_budget(self):
        ctrl = AdmissionController(["a"], max_inflight=4, rate_limit=None)
        granted = ctrl.reserve_window(3)
        assert granted == 3
        # Non-reserved traffic sees only the remaining budget.
        codes = ctrl.admit_many("a", 2)
        assert codes == [None, RejectCode.OVERLOADED]
        ctrl.release()
        # Reserved admissions are window-bounded by the gateway, not
        # by the shared cap.
        assert ctrl.admit_many("a", 3, reserved=True) == [None] * 3
        ctrl.release(reserved=True, count=3)
        ctrl.release_window(3)
        assert ctrl.reserve_window(99) == 4


class TestHttpIngress:
    @pytest.fixture(scope="class")
    def http_stack(self, stack):
        server = GatewayServer(
            stack["engine"], http_port=0
        ).start()
        yield {**stack, "server": server}
        server.stop()

    def _request(self, port, method, path, body=None):
        import http.client
        import json as _json

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            conn.request(
                method, path,
                body=_json.dumps(body) if body is not None else None,
            )
            resp = conn.getresponse()
            payload = _json.loads(resp.read() or b"null")
            return resp.status, payload, dict(resp.getheaders())
        finally:
            conn.close()

    def test_predict_packed_and_features(self, http_stack):
        port = http_stack["server"].http_port
        task, clf = http_stack["alpha"]
        words = clf.encoder.encode_packed(task.test_x[:4]).words
        expected = clf.predict(task.test_x[:4]).tolist()
        status, payload, _ = self._request(
            port, "POST", "/v1/predict",
            {"tenant": "alpha", "packed": words.tolist()},
        )
        assert status == 200
        assert payload["predictions"] == expected
        status, payload, _ = self._request(
            port, "POST", "/v1/predict",
            {"tenant": "alpha", "features": task.test_x[:4].tolist()},
        )
        assert status == 200
        assert payload["predictions"] == expected

    def test_healthz(self, http_stack):
        port = http_stack["server"].http_port
        status, payload, _ = self._request(port, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert set(payload["tenants"]) == {"alpha", "beta"}

    def test_unknown_tenant_is_404(self, http_stack):
        port = http_stack["server"].http_port
        status, payload, _ = self._request(
            port, "POST", "/v1/predict",
            {"tenant": "ghost", "packed": [[1, 2]]},
        )
        assert status == 404
        assert payload["error"] == "UNKNOWN_TENANT"

    def test_bad_body_is_400(self, http_stack):
        port = http_stack["server"].http_port
        status, payload, _ = self._request(
            port, "POST", "/v1/predict", {"tenant": "alpha"}
        )
        assert status == 400
        status, payload, _ = self._request(
            port, "POST", "/v1/predict",
            {"tenant": "alpha", "packed": [[1]], "features": [[1.0]]},
        )
        assert status == 400

    def test_unknown_route_is_404_and_wrong_method_405(self, http_stack):
        port = http_stack["server"].http_port
        status, _, _ = self._request(port, "GET", "/nope")
        assert status == 404
        status, _, _ = self._request(port, "GET", "/v1/predict")
        assert status == 405

    def test_rate_limited_is_429_with_retry_after(self, stack):
        server = GatewayServer(
            stack["engine"], rate_limit=1.0, burst=1.0, http_port=0
        ).start()
        task, clf = stack["alpha"]
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        try:
            saw_429 = None
            for _ in range(4):
                status, payload, headers = self._request(
                    server.http_port, "POST", "/v1/predict",
                    {"tenant": "alpha", "packed": words.tolist()},
                )
                if status == 429:
                    saw_429 = (payload, headers)
                    break
            assert saw_429 is not None, "burst of 1 never throttled"
            payload, headers = saw_429
            assert payload["error"] == "RATE_LIMITED"
            assert payload["retry_after_ms"] > 0
            assert int(headers["Retry-After"]) >= 1
        finally:
            server.stop()
