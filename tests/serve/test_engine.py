"""Serving-engine tests: correctness, deadlines, backpressure, lifecycle.

Every test that starts workers also asserts the engine leaves no
``/dev/shm`` entry behind — including the satellite's worker-crash case,
where workers are SIGKILLed mid-flight and cleanup still falls to the
engine (segment creators unlink; attachers never do).
"""

import glob
import os
import signal
import time

import numpy as np
import pytest

from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier
from repro.datasets.synthetic import make_prototype_classification
from repro.serve import Backpressure, ServingEngine


def shm_entries(prefix: str) -> list[str]:
    return glob.glob(f"/dev/shm/{prefix}*")


@pytest.fixture(scope="module")
def fitted():
    task = make_prototype_classification(
        "serve", num_features=12, num_classes=4, num_train=160, num_test=48,
        seed=3,
    )
    encoder = Encoder(num_features=12, dim=768, levels=8, seed=4)
    clf = HDCClassifier(encoder, num_classes=4, epochs=1, seed=5).fit(
        task.train_x, task.train_y
    )
    return task, clf


class TestServing:
    def test_packed_predictions_match_model(self, fitted):
        task, clf = fitted
        reference = clf.predict(task.test_x)
        packed = clf.encoder.encode_packed(task.test_x)
        with ServingEngine(clf, num_workers=2) as engine:
            served = engine.predict(packed.words)
            prefix = engine.config.prefix
        assert (served == reference).all()
        assert shm_entries(prefix) == []

    def test_feature_predictions_match_model(self, fitted):
        task, clf = fitted
        reference = clf.predict(task.test_x)
        with ServingEngine(clf, num_workers=2) as engine:
            served = engine.predict_features(task.test_x)
        assert (served == reference).all()

    def test_single_request_roundtrip(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x[:5]).words
        with ServingEngine(clf, num_workers=1) as engine:
            request_id = engine.submit(words)
            result = engine.result(request_id)
        assert result.ok and not result.expired
        assert (result.predictions == clf.predict(task.test_x[:5])).all()

    def test_trace_records_batches(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x).words
        with ServingEngine(clf, num_workers=2) as engine:
            engine.predict(words)
            trace = engine.trace
        assert len(trace) >= 1
        assert trace.queries_served == task.test_x.shape[0]
        assert trace.requests_expired == 0
        event = trace.events[0]
        assert event.generation >= 1
        assert event.duration_s >= 0.0
        # Round-trips exactly through JSONL like the recovery trace.
        from repro.obs.trace import ServeTrace

        assert ServeTrace.from_jsonl(trace.to_jsonl()).events == trace.events

    def test_mismatched_encoder_rejected(self, fitted):
        _, clf = fitted
        other = Encoder(num_features=12, dim=clf.encoder.dim * 2, levels=8,
                        seed=9)
        with pytest.raises(ValueError, match="dim"):
            ServingEngine(clf, encoder=other, num_workers=1)

    def test_feature_requests_need_encoder(self, fitted):
        task, clf = fitted
        with ServingEngine(clf.model, num_workers=1) as engine:
            with pytest.raises(ValueError, match="encoder"):
                engine.submit_features(task.test_x[:2])


class TestDeadlinesAndBackpressure:
    def test_expired_deadline_is_reported_not_computed(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x[:4]).words
        with ServingEngine(clf, num_workers=1) as engine:
            # Warm the worker up so the expired request is not stuck
            # behind fork latency in a way that masks the deadline path.
            engine.result(engine.submit(words))
            request_id = engine.submit(words, deadline=1e-9)
            result = engine.result(request_id)
        assert result.expired
        assert result.predictions is None
        assert not result.ok

    def test_backpressure_bounds_in_flight_requests(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        engine = ServingEngine(
            clf, num_workers=1, ring_slots=2, backpressure_timeout=0.05
        )
        try:
            # Fill both slots without dispatching (flush=False): the ring
            # is now saturated and the next submit must shed load.
            engine.submit(words, flush=False)
            engine.submit(words, flush=False)
            with pytest.raises(Backpressure, match="in flight"):
                engine.submit(words, flush=False)
        finally:
            engine.stop()

    def test_submit_after_stop_rejected(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        engine = ServingEngine(clf, num_workers=1)
        engine.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            engine.submit(words)


class TestLifecycle:
    def test_stop_is_idempotent_and_releases_segments(self, fitted):
        _, clf = fitted
        engine = ServingEngine(clf, num_workers=2)
        prefix = engine.config.prefix
        assert shm_entries(prefix)  # control + ring + codebook + gen 1
        engine.stop()
        engine.stop()  # second stop must not raise
        assert shm_entries(prefix) == []

    def test_worker_crash_mid_batch_releases_segments(self, fitted):
        """SIGKILLed workers leak nothing: the engine owns every segment
        and unlinks them all on stop, and requests the dead workers held
        are failed instead of hanging their callers."""
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x[:4]).words
        engine = ServingEngine(clf, num_workers=2, ring_slots=16)
        prefix = engine.config.prefix
        try:
            # Put real work in flight (below the frame-batch auto-flush
            # threshold, so nothing is served before the kill), then kill
            # both workers mid-batch.
            ids = [engine.submit(words, flush=False) for _ in range(6)]
            for worker in engine.workers:
                os.kill(worker.pid, signal.SIGKILL)
            engine.flush()
            time.sleep(0.05)
        finally:
            engine.stop()
        assert shm_entries(prefix) == []
        # Unserved requests were resolved as failures, not left pending.
        for request_id in ids:
            assert not engine.result(request_id, timeout=1.0).ok

    def test_worker_exit_keeps_segments_usable_by_survivors(self, fitted):
        task, clf = fitted
        reference = clf.predict(task.test_x)
        words = clf.encoder.encode_packed(task.test_x).words
        engine = ServingEngine(clf, num_workers=2)
        prefix = engine.config.prefix
        try:
            os.kill(engine.workers[0].pid, signal.SIGKILL)
            time.sleep(0.05)
            served = engine.predict(words)  # survivor serves everything
            assert (served == reference).all()
        finally:
            engine.stop()
        assert shm_entries(prefix) == []
