"""Frame-protocol tests: round-trip properties, typed rejection, framing.

The satellite contract: encode/decode round-trips under arbitrary
chunking (hypothesis), truncated/oversized/garbage-header frames raise
*typed* errors, and a bad frame never costs the stream more bytes than
the frame itself — when the framing is sound, the next frame still
decodes.
"""

import struct

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serve.protocol import (
    MAGIC,
    VERSION,
    BadFrame,
    BadMagic,
    BadVersion,
    Frame,
    FrameDecoder,
    FrameKind,
    FrameTooLarge,
    ProtocolError,
    decode_array,
    decode_predictions,
    decode_status,
    encode_array,
    encode_frame,
    encode_predictions,
    encode_status,
)

U64 = st.integers(min_value=0, max_value=2**64 - 1)

tenants = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
    max_size=40,
)

frames = st.builds(
    Frame,
    st.sampled_from(list(FrameKind)),
    tenant=tenants,
    trace_id=U64,
    deadline_ns=U64,
    payload=st.binary(max_size=512),
)


class TestRoundTrip:
    @given(frames)
    def test_single_frame(self, frame):
        decoded = FrameDecoder().feed(encode_frame(frame))
        assert decoded == [frame]

    @given(st.lists(frames, min_size=1, max_size=6), st.randoms())
    def test_many_frames_arbitrary_chunking(self, batch, rnd):
        wire = b"".join(encode_frame(f) for f in batch)
        decoder = FrameDecoder()
        out = []
        start = 0
        while start < len(wire):
            end = rnd.randint(start + 1, len(wire))
            out.extend(decoder.feed(wire[start:end]))
            start = end
        assert out == batch
        assert decoder.buffered == 0

    @given(frames)
    def test_byte_at_a_time(self, frame):
        decoder = FrameDecoder()
        out = []
        for byte in encode_frame(frame):
            out.extend(decoder.feed(bytes([byte])))
        assert out == [frame]

    @given(st.integers(0, 2**32 - 1))
    def test_trace_id_width(self, trace_id):
        frame = Frame(FrameKind.PING, trace_id=trace_id)
        assert FrameDecoder().feed(encode_frame(frame))[0].trace_id == \
            trace_id


class TestPayloadCodecs:
    @given(
        st.sampled_from([FrameKind.PACKED, FrameKind.FEATURES]),
        st.integers(1, 8),
        st.integers(1, 16),
        st.integers(0, 2**32 - 1),
    )
    def test_array_round_trip(self, kind, rows, cols, seed):
        rng = np.random.default_rng(seed)
        if kind == FrameKind.PACKED:
            array = rng.integers(
                0, 2**63, size=(rows, cols), dtype=np.uint64
            )
        else:
            array = rng.standard_normal((rows, cols))
        out = decode_array(kind, encode_array(kind, array))
        assert out.shape == array.shape
        np.testing.assert_array_equal(out, array)

    def test_array_must_be_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            encode_array(FrameKind.PACKED, np.zeros(4, dtype=np.uint64))

    def test_array_body_length_mismatch_is_typed(self):
        body = encode_array(
            FrameKind.PACKED, np.zeros((2, 3), dtype=np.uint64)
        )
        with pytest.raises(BadFrame, match="claims shape"):
            decode_array(FrameKind.PACKED, body[:-8])
        with pytest.raises(BadFrame, match="dims header"):
            decode_array(FrameKind.PACKED, b"\x00")

    @given(st.lists(st.integers(-2**60, 2**60), max_size=32))
    def test_predictions_round_trip(self, values):
        array = np.asarray(values, dtype=np.int64)
        np.testing.assert_array_equal(
            decode_predictions(encode_predictions(array)), array
        )

    def test_predictions_mismatch_is_typed(self):
        body = encode_predictions(np.arange(4))
        with pytest.raises(BadFrame, match="claims 4 predictions"):
            decode_predictions(body[:-4])

    @given(st.integers(1, 255), st.text(max_size=64))
    def test_status_round_trip(self, code, detail):
        got_code, got_detail = decode_status(encode_status(code, detail))
        assert got_code == code
        assert got_detail == detail

    def test_empty_status_is_typed(self):
        with pytest.raises(BadFrame, match="code byte"):
            decode_status(b"")


def _raw_frame(
    *,
    magic=MAGIC,
    version=VERSION,
    kind=int(FrameKind.PING),
    tenant=b"",
    tenant_len=None,
    payload=b"",
    length=None,
) -> bytes:
    header = struct.pack(
        ">HBBHHQQ", magic, version, kind,
        len(tenant) if tenant_len is None else tenant_len,
        0, 7, 0,
    )
    body = header + tenant + payload
    return struct.pack(">I", len(body) if length is None else length) + body


class TestMalformedFrames:
    """Typed rejection; sound-framing errors cost exactly one frame."""

    def test_garbage_magic(self):
        with pytest.raises(BadMagic, match="0x5247"):
            FrameDecoder().feed(_raw_frame(magic=0xDEAD))

    def test_unsupported_version(self):
        with pytest.raises(BadVersion, match="version 9"):
            FrameDecoder().feed(_raw_frame(version=9))

    def test_oversized_length_prefix_rejected_before_buffering(self):
        decoder = FrameDecoder(max_frame_bytes=1024)
        with pytest.raises(FrameTooLarge, match="exceeds cap 1024"):
            decoder.feed(struct.pack(">I", 1 << 30))

    def test_length_shorter_than_header(self):
        with pytest.raises(BadFrame, match="shorter than"):
            FrameDecoder().feed(struct.pack(">I", 3) + b"abc")

    def test_unknown_kind_consumes_exactly_the_bad_frame(self):
        good = Frame(FrameKind.PING, trace_id=42)
        wire = _raw_frame(kind=200) + encode_frame(good)
        decoder = FrameDecoder()
        with pytest.raises(BadFrame, match="unknown frame kind 200"):
            decoder.feed(wire)
        # No bytes past the bad frame were consumed: the next feed
        # yields the following frame intact.
        assert decoder.feed(b"") == [good]

    def test_tenant_len_overrun_consumes_exactly_the_bad_frame(self):
        good = Frame(FrameKind.PONG, tenant="t")
        wire = _raw_frame(tenant=b"ab", tenant_len=999) + \
            encode_frame(good)
        decoder = FrameDecoder()
        with pytest.raises(BadFrame, match="overruns"):
            decoder.feed(wire)
        assert decoder.feed(b"") == [good]

    def test_invalid_utf8_tenant_is_typed(self):
        decoder = FrameDecoder()
        with pytest.raises(BadFrame, match="UTF-8"):
            decoder.feed(_raw_frame(tenant=b"\xff\xfe"))
        assert decoder.feed(encode_frame(Frame(FrameKind.PING))) == [
            Frame(FrameKind.PING)
        ]

    def test_truncated_frame_waits_rather_than_errors(self):
        wire = encode_frame(Frame(FrameKind.PING, trace_id=9))
        decoder = FrameDecoder()
        assert decoder.feed(wire[:-3]) == []
        assert decoder.buffered == len(wire) - 3
        assert decoder.feed(wire[-3:])[0].trace_id == 9

    def test_poisoned_decoder_refuses_further_input(self):
        decoder = FrameDecoder()
        with pytest.raises(BadMagic):
            decoder.feed(_raw_frame(magic=0))
        with pytest.raises(ProtocolError, match="poisoned"):
            decoder.feed(encode_frame(Frame(FrameKind.PING)))

    @given(st.binary(min_size=4, max_size=64))
    def test_arbitrary_garbage_never_decodes_silently(self, junk):
        """Random bytes either wait for more input or raise typed."""
        decoder = FrameDecoder(max_frame_bytes=1 << 16)
        try:
            frames = decoder.feed(junk)
        except ProtocolError:
            return
        # Anything decoded must have carried the real magic + version.
        for frame in frames:
            assert isinstance(frame, Frame)


class TestBatchCodecs:
    """SUBMIT_BATCH / RESPONSE_BATCH / CREDIT wire contracts."""

    @staticmethod
    def _payloads(rnd, count, cols, features):
        dtype = np.float64 if features else np.uint64
        out = []
        for i in range(count):
            rows = rnd.randint(1, 4)
            if features:
                arr = np.arange(rows * cols, dtype=dtype).reshape(
                    rows, cols) * (i + 1) * 0.5
            else:
                arr = (np.arange(rows * cols, dtype=dtype).reshape(
                    rows, cols) + i * 1000)
            out.append(arr)
        return out

    @given(
        st.randoms(),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=5),
        st.booleans(),
    )
    def test_submit_batch_round_trip_arbitrary_chunking(
        self, rnd, count, cols, features
    ):
        from repro.serve.protocol import (
            decode_submit_batch,
            encode_submit_batch,
        )
        payloads = self._payloads(rnd, count, cols, features)
        trace_ids = [rnd.randint(0, 2**64 - 1) for _ in range(count)]
        frame = Frame(
            FrameKind.SUBMIT_BATCH,
            tenant="alpha",
            trace_id=7,
            payload=encode_submit_batch(
                payloads, features=features, trace_ids=trace_ids
            ),
        )
        wire = encode_frame(frame)
        decoder = FrameDecoder()
        out = []
        start = 0
        while start < len(wire):
            end = rnd.randint(start + 1, len(wire))
            out.extend(decoder.feed(wire[start:end]))
            start = end
        assert len(out) == 1
        batch = decode_submit_batch(out[0].payload)
        assert batch.features == features
        assert len(batch) == count
        assert list(batch.trace_ids) == trace_ids
        for i, expected in enumerate(payloads):
            got = batch.payload_for(i)
            assert got.dtype == expected.dtype
            assert (got == expected).all()
            # Zero-copy contract: entries are views into one block.
            assert got.base is not None

    def test_submit_batch_length_prefix_trips_frame_cap(self):
        """An honest batch bigger than the cap raises FrameTooLarge
        from the length prefix alone — before the body is buffered."""
        from repro.serve.protocol import encode_submit_batch

        big = [np.zeros((4, 64), dtype=np.uint64) for _ in range(8)]
        wire = encode_frame(Frame(
            FrameKind.SUBMIT_BATCH,
            payload=encode_submit_batch(big),
        ))
        decoder = FrameDecoder(max_frame_bytes=1024)
        with pytest.raises(FrameTooLarge):
            decoder.feed(wire[:16])  # length prefix + partial header
        with pytest.raises(ProtocolError, match="poisoned"):
            decoder.feed(wire[16:])

    @given(st.randoms(), st.integers(min_value=1, max_value=4))
    def test_credit_frames_interleave_with_batches(self, rnd, credits):
        """CREDIT frames threaded between batch frames decode in
        order under arbitrary chunking (the client read-loop relies
        on this to account credits before the replies they unblock)."""
        from repro.serve.protocol import (
            decode_credit,
            decode_submit_batch,
            encode_credit,
            encode_submit_batch,
        )
        payloads = self._payloads(rnd, 3, 2, False)
        batch_frame = Frame(
            FrameKind.SUBMIT_BATCH,
            tenant="alpha",
            payload=encode_submit_batch(payloads),
        )
        sequence = [
            Frame(FrameKind.CREDIT, payload=encode_credit(credits)),
            batch_frame,
            Frame(FrameKind.CREDIT, payload=encode_credit(credits + 1)),
            Frame(FrameKind.PONG, trace_id=3),
        ]
        wire = b"".join(encode_frame(f) for f in sequence)
        decoder = FrameDecoder()
        out = []
        start = 0
        while start < len(wire):
            end = rnd.randint(start + 1, len(wire))
            out.extend(decoder.feed(wire[start:end]))
            start = end
        assert [f.kind for f in out] == [
            FrameKind.CREDIT, FrameKind.SUBMIT_BATCH,
            FrameKind.CREDIT, FrameKind.PONG,
        ]
        assert decode_credit(out[0].payload) == credits
        assert decode_credit(out[2].payload) == credits + 1
        assert len(decode_submit_batch(out[1].payload)) == 3

    def test_response_batch_round_trip_mixed_statuses(self):
        from repro.serve.protocol import (
            BATCH_REJECT_BASE,
            decode_response_batch,
            encode_response_batch,
        )
        trace_ids = [11, 22, 33]
        statuses = np.array(
            [0, BATCH_REJECT_BASE + 2, 0], dtype=np.uint8
        )
        predictions = [
            np.array([1, 2, 3], dtype=np.int64),
            None,
            np.array([4], dtype=np.int64),
        ]
        decoded = decode_response_batch(
            encode_response_batch(trace_ids, statuses, predictions)
        )
        assert list(decoded.trace_ids) == trace_ids
        assert list(decoded.statuses) == list(statuses)
        assert (decoded.predictions_for(0) == predictions[0]).all()
        assert decoded.rows[1] == 0
        assert (decoded.predictions_for(2) == predictions[2]).all()

    def test_empty_batch_is_rejected_at_encode(self):
        from repro.serve.protocol import encode_submit_batch

        with pytest.raises(ValueError, match="at least one"):
            encode_submit_batch([])

    def test_ragged_columns_are_rejected_at_encode(self):
        from repro.serve.protocol import encode_submit_batch

        with pytest.raises(ValueError, match="column count"):
            encode_submit_batch([
                np.zeros((1, 2), dtype=np.uint64),
                np.zeros((1, 3), dtype=np.uint64),
            ])

    def test_reject_round_trips_retry_hint(self):
        from repro.serve.protocol import (
            RejectCode,
            decode_reject,
            encode_reject,
        )
        code, detail, hint = decode_reject(encode_reject(
            int(RejectCode.RATE_LIMITED), "slow down",
            retry_after_ms=475,
        ))
        assert code == int(RejectCode.RATE_LIMITED)
        assert detail == "slow down"
        assert hint == 475
        code, detail, hint = decode_reject(encode_reject(
            int(RejectCode.OVERLOADED), "full"
        ))
        assert hint is None
