"""WorkerAutoscaler policy tests, tick-driven (no timer thread)."""

import numpy as np
import pytest

from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier
from repro.datasets.synthetic import make_prototype_classification
from repro.serve import ServeRequest, ServingEngine
from repro.serve.autoscale import WorkerAutoscaler


@pytest.fixture(scope="module")
def fitted():
    task = make_prototype_classification(
        "scale", num_features=10, num_classes=4, num_train=120,
        num_test=32, seed=17,
    )
    encoder = Encoder(num_features=10, dim=512, levels=8, seed=18)
    clf = HDCClassifier(encoder, num_classes=4, epochs=1, seed=19).fit(
        task.train_x, task.train_y
    )
    return task, clf


def _load(engine, words, n):
    futures = [
        engine.submit(ServeRequest(words), flush=False) for _ in range(n)
    ]
    engine.flush()
    for future in futures:
        future.result()


class TestPolicy:
    def test_scales_up_on_sustained_wait_then_down_on_idle(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x[:8]).words
        with ServingEngine(
            clf, num_workers=1, min_workers=1, max_workers=3,
            ring_slots=128,
        ) as engine:
            scaler = WorkerAutoscaler(
                engine,
                scale_up_p95_s=1e-7,  # any measured wait counts as load
                scale_down_p95_s=5e-8,
                sustain_up=2,
                sustain_down=3,
                cooldown_s=0.0,
            )
            ups = 0
            for _ in range(12):
                _load(engine, words, 40)
                event = scaler.tick()
                if event and event["action"] == "up":
                    ups += 1
            assert ups >= 1
            assert engine.live_workers > 1
            assert engine.live_workers <= 3  # bounded by max_workers
            # Idle windows (no new batches) shrink the pool back down.
            downs = 0
            for _ in range(12):
                event = scaler.tick()
                if event and event["action"] == "down":
                    downs += 1
            assert downs >= 1
            assert engine.live_workers >= 1  # bounded by min_workers
            kinds = {e["action"] for e in scaler.events}
            assert kinds == {"up", "down"}
            # Scaled pool still serves correctly.
            result = engine.submit(ServeRequest(words)).result()
            np.testing.assert_array_equal(
                result.predictions, clf.predict(task.test_x[:8])
            )

    def test_never_exceeds_max_workers(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x[:8]).words
        with ServingEngine(
            clf, num_workers=2, min_workers=1, max_workers=2,
            ring_slots=128,
        ) as engine:
            scaler = WorkerAutoscaler(
                engine, scale_up_p95_s=1e-9, scale_down_p95_s=1e-10,
                sustain_up=1, cooldown_s=0.0,
            )
            for _ in range(6):
                _load(engine, words, 30)
                scaler.tick()
            assert engine.live_workers <= 2
            assert all(e["action"] != "up" for e in scaler.events)

    def test_never_drops_below_min_workers(self, fitted):
        task, clf = fitted
        with ServingEngine(
            clf, num_workers=2, min_workers=2, max_workers=4,
        ) as engine:
            scaler = WorkerAutoscaler(
                engine, sustain_down=1, cooldown_s=0.0,
            )
            for _ in range(6):
                assert scaler.tick() is None  # at the floor: no action
            assert engine.live_workers == 2

    def test_threaded_lifecycle(self, fitted):
        task, clf = fitted
        with ServingEngine(clf, num_workers=1, max_workers=2) as engine:
            with WorkerAutoscaler(engine, interval_s=0.02).start():
                words = clf.encoder.encode_packed(task.test_x[:4]).words
                engine.submit(ServeRequest(words)).result()

    def test_requires_telemetry(self, fitted):
        task, clf = fitted
        engine = ServingEngine(clf, num_workers=1, telemetry=False)
        try:
            with pytest.raises(ValueError, match="telemetry"):
                WorkerAutoscaler(engine)
        finally:
            engine.stop()

    def test_threshold_validation(self, fitted):
        task, clf = fitted
        with ServingEngine(clf, num_workers=1) as engine:
            with pytest.raises(ValueError, match="scale_down_p95_s"):
                WorkerAutoscaler(
                    engine, scale_up_p95_s=0.001, scale_down_p95_s=0.01
                )


class TestEngineElasticity:
    def test_add_worker_respects_max(self, fitted):
        task, clf = fitted
        with ServingEngine(
            clf, num_workers=1, max_workers=2
        ) as engine:
            engine.add_worker()
            with pytest.raises(RuntimeError, match="max_workers"):
                engine.add_worker()

    def test_remove_worker_serves_in_hand_work(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x[:8]).words
        with ServingEngine(
            clf, num_workers=3, min_workers=1, ring_slots=64
        ) as engine:
            futures = [
                engine.submit(ServeRequest(words), flush=False)
                for _ in range(30)
            ]
            engine.flush()
            retired = engine.remove_worker()
            assert retired is not None
            for future in futures:
                result = future.result()
                np.testing.assert_array_equal(
                    result.predictions, clf.predict(task.test_x[:8])
                )
            assert engine.live_workers == 2
