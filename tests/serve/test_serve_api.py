"""Unified submit API tests: ServeRequest/ServeFuture, shims, config.

Pins the api_redesign satellites: the deprecated
``submit(words)``/``submit_features``/``predict``/``predict_features``
shims emit DeprecationWarning and stay bit-identical to the
``ServeRequest`` path; ``ServeConfig`` is keyword-only and its
validation errors name the offending field; ``repro.serve.__all__`` is
the stable seven-name surface; and ``stop()`` is idempotent and safe
under concurrent/atexit-style invocation.
"""

import threading

import numpy as np
import pytest

import repro.serve as serve_pkg
from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier
from repro.datasets.synthetic import make_prototype_classification
from repro.serve import ServeConfig, ServeRequest, ServingEngine
from repro.serve.engine import ServeFuture, TenantSlot


@pytest.fixture(scope="module")
def fitted():
    task = make_prototype_classification(
        "api", num_features=10, num_classes=4, num_train=120, num_test=32,
        seed=7,
    )
    encoder = Encoder(num_features=10, dim=512, levels=8, seed=8)
    clf = HDCClassifier(encoder, num_classes=4, epochs=1, seed=9).fit(
        task.train_x, task.train_y
    )
    return task, clf


@pytest.fixture(scope="module")
def engine(fitted):
    _, clf = fitted
    with ServingEngine(clf, num_workers=2) as eng:
        yield eng


class TestUnifiedSubmit:
    def test_submit_returns_future_with_result(self, fitted, engine):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x[:6]).words
        future = engine.submit(ServeRequest(words))
        assert isinstance(future, ServeFuture)
        result = future.result()
        assert result.ok
        np.testing.assert_array_equal(
            result.predictions, clf.predict(task.test_x[:6])
        )

    def test_future_result_is_repeatable(self, fitted, engine):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x[:3]).words
        future = engine.submit(ServeRequest(words))
        first = future.result()
        assert future.result() is first  # cached, not re-collected
        assert future.done()

    def test_feature_request(self, fitted, engine):
        task, clf = fitted
        future = engine.submit(ServeRequest(task.test_x[:5], features=True))
        np.testing.assert_array_equal(
            future.result().predictions, clf.predict(task.test_x[:5])
        )

    def test_done_callback_fires_once(self, fitted, engine):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        got = []
        event = threading.Event()
        future = engine.submit(ServeRequest(words))
        future.add_done_callback(lambda r: (got.append(r), event.set()))
        assert event.wait(10.0)
        assert len(got) == 1 and got[0].ok
        # Registering on an already-resolved request fires immediately.
        late = []
        future.add_done_callback(late.append)
        assert late == got

    def test_client_trace_id_echoed(self, fitted, engine):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        future = engine.submit(ServeRequest(words, trace_id=777))
        assert future.client_trace_id == 777
        assert future.tenant == "default"
        future.result()

    def test_unknown_tenant_rejected(self, fitted, engine):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        with pytest.raises(KeyError, match="unknown tenant"):
            engine.submit(ServeRequest(words, tenant="nope"))

    def test_deadline_belongs_on_request(self, fitted, engine):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        with pytest.raises(TypeError, match="ServeRequest"):
            engine.submit(ServeRequest(words), deadline=1.0)


class TestDeprecatedShims:
    """Old entry points warn and match the ServeRequest path exactly."""

    def test_submit_words_warns_and_matches(self, fitted, engine):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x[:6]).words
        new = engine.submit(ServeRequest(words)).result().predictions
        with pytest.warns(DeprecationWarning, match="submit"):
            request_id = engine.submit(words)
        assert isinstance(request_id, int)
        old = engine.result(request_id).predictions
        np.testing.assert_array_equal(old, new)

    def test_submit_features_warns_and_matches(self, fitted, engine):
        task, clf = fitted
        new = engine.submit(
            ServeRequest(task.test_x[:6], features=True)
        ).result().predictions
        with pytest.warns(DeprecationWarning, match="submit_features"):
            request_id = engine.submit_features(task.test_x[:6])
        np.testing.assert_array_equal(
            engine.result(request_id).predictions, new
        )

    def test_predict_warns_and_matches(self, fitted, engine):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x).words
        with pytest.warns(DeprecationWarning, match="predict"):
            old = engine.predict(words)
        np.testing.assert_array_equal(old, clf.predict(task.test_x))

    def test_predict_features_warns_and_matches(self, fitted, engine):
        task, clf = fitted
        with pytest.warns(DeprecationWarning, match="predict_features"):
            old = engine.predict_features(task.test_x)
        np.testing.assert_array_equal(old, clf.predict(task.test_x))


class TestServeConfig:
    def _tenant(self, **overrides):
        base = dict(
            index=0, tenant_id="default", prefix="p-t0",
            control_name="p-t0-control", dim=512, num_classes=4,
        )
        base.update(overrides)
        return TenantSlot(**base)

    def _config(self, **overrides):
        base = dict(
            prefix="p", ring_name="p-ring", ring_slots=8, slot_bytes=512,
            coalesce_requests=8, stall_ns=10**9,
            tenants=(self._tenant(),),
        )
        base.update(overrides)
        return ServeConfig(**base)

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            ServeConfig("p", "p-ring", 8, 512, 8, 10**9)  # noqa

    @pytest.mark.parametrize(
        ("field", "value", "message"),
        [
            ("ring_slots", 0, "ServeConfig.ring_slots"),
            ("slot_bytes", 7, "ServeConfig.slot_bytes"),
            ("coalesce_requests", 0, "ServeConfig.coalesce_requests"),
            ("stall_ns", -1, "ServeConfig.stall_ns"),
            ("prefix", "", "ServeConfig.prefix"),
            ("tenants", (), "ServeConfig.tenants"),
            ("flight_slots", -1, "ServeConfig.flight_slots"),
            ("num_shards", 0, "ServeConfig.num_shards"),
            ("min_workers", 0, "ServeConfig.min_workers"),
        ],
    )
    def test_validation_names_offending_field(self, field, value, message):
        with pytest.raises(ValueError, match=message):
            self._config(**{field: value})

    def test_max_workers_below_min_named(self):
        with pytest.raises(ValueError, match="ServeConfig.max_workers"):
            self._config(min_workers=4, max_workers=2)

    def test_sharding_single_tenant_only(self):
        two = (self._tenant(), self._tenant(
            index=1, tenant_id="b", prefix="p-t1",
            control_name="p-t1-control",
        ))
        with pytest.raises(ValueError, match="ServeConfig.num_shards"):
            self._config(
                tenants=two, num_shards=2, shard_kind="class",
                shard_bounds=((0, 2), (2, 4)),
            )

    def test_single_tenant_back_compat_views(self):
        cfg = self._config()
        assert cfg.control_name == "p-t0-control"
        assert cfg.dim == 512
        assert cfg.codebook_name is None


class TestStableSurface:
    def test_all_is_the_stable_seven(self):
        assert serve_pkg.__all__ == [
            "GatewayClient",
            "GatewayServer",
            "ServeConfig",
            "ServeRequest",
            "ServingEngine",
            "ShardPlan",
            "TenantRegistry",
        ]

    def test_legacy_names_stay_importable(self):
        # Out of __all__, but still reachable for existing callers.
        for name in ("Backpressure", "ServeResult", "GenerationPublisher",
                     "ShmArray", "worker_main", "AsyncGatewayClient"):
            assert hasattr(serve_pkg, name), name


class TestStopSafety:
    def test_stop_is_idempotent_and_concurrent_safe(self, fitted):
        task, clf = fitted
        engine = ServingEngine(clf, num_workers=1)
        words = clf.encoder.encode_packed(task.test_x[:2]).words
        engine.submit(ServeRequest(words)).result()
        prefix = engine.config.prefix
        # Hammer stop from many threads at once — exactly one performs
        # the teardown; none raises; segments are unlinked exactly once.
        errors = []

        def _stop():
            try:
                engine.stop()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=_stop) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        import glob

        assert glob.glob(f"/dev/shm/{prefix}*") == []
        # A late call (the atexit/signal-handler shape) is a no-op.
        engine.stop()
        # Telemetry stays scrapeable on the frozen copies.
        assert engine.scrape_telemetry() is not None
