"""Serve-side telemetry integration: slabs, trace ids, SIGKILL post-mortems.

The three pins this file owns:

* fleet counters scraped out of worker shared memory agree with the
  engine's own :class:`~repro.obs.trace.ServeTrace` totals;
* a worker SIGKILLed mid-flight leaves a decodable flight-recorder ring
  (the slab is engine-owned, so the crash cannot take it down);
* telemetry on vs off is *bit-identical* for a seeded concurrent
  attack-and-recover run — recording draws from no RNG.
"""

import glob
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier
from repro.core.pipeline import RecoveryExperiment
from repro.core.recovery import RecoveryConfig
from repro.datasets.synthetic import make_prototype_classification
from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.telemetry import correlate, render_contention_table
from repro.serve import ServingEngine


@pytest.fixture(scope="module")
def fitted():
    task = make_prototype_classification(
        "tele", num_features=12, num_classes=4, num_train=160, num_test=48,
        seed=3,
    )
    encoder = Encoder(num_features=12, dim=768, levels=8, seed=4)
    clf = HDCClassifier(encoder, num_classes=4, epochs=1, seed=5).fit(
        task.train_x, task.train_y
    )
    return task, clf


class TestFleetScrape:
    def test_fleet_counters_match_trace_totals(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x).words
        with ServingEngine(clf, num_workers=2) as engine:
            engine.predict(words)
            engine.predict(words)
            merged = engine.scrape_telemetry(MetricsRegistry())
            trace = engine.trace
        assert merged["counters"]["batches"] == len(trace)
        assert merged["counters"]["requests"] == trace.requests_served
        assert merged["counters"]["queries"] == trace.queries_served
        assert merged["counters"]["expired"] == trace.requests_expired
        duration = merged["histograms"]["batch_duration_ns"]
        assert duration["count"] == len(trace)
        assert duration["min"] > 0

    def test_scrape_into_registry_and_prometheus(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x).words
        registry = MetricsRegistry()
        with ServingEngine(clf, num_workers=2) as engine:
            engine.predict(words)
            engine.scrape_telemetry(registry)
            ps = engine.telemetry.percentiles("batch_duration_ns")
        assert registry.counter("serve.fleet.queries") == words.shape[0]
        assert registry.snapshot()["gauges"][
            "serve.fleet.workers_reporting"
        ] >= 1
        assert 0 < ps[50.0] <= ps[99.0]
        text = render_prometheus(registry)
        assert "repro_serve_fleet_queries" in text
        assert "repro_serve_fleet_batch_duration_p95" in text

    def test_stop_scrapes_into_installed_registry(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x).words
        with use_metrics(MetricsRegistry()) as registry:
            engine = ServingEngine(clf, num_workers=1)
            try:
                engine.predict(words)
            finally:
                engine.stop()
            assert registry.counter("serve.fleet.queries") == words.shape[0]
        # Post-stop reads stay valid on the frozen final state.
        assert engine.telemetry.scrape()["counters"]["queries"] == (
            words.shape[0]
        )

    def test_telemetry_disabled(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x[:4]).words
        with ServingEngine(clf, num_workers=1, telemetry=False) as engine:
            engine.predict(words)
            assert engine.telemetry is None
            assert engine.flight_recorder is None
            with pytest.raises(RuntimeError, match="telemetry=False"):
                engine.scrape_telemetry()
            prefix = engine.config.prefix
        assert glob.glob(f"/dev/shm/{prefix}*") == []


class TestTraceIds:
    def test_trace_ids_flow_into_batch_events(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x).words
        with ServingEngine(clf, num_workers=2) as engine:
            engine.predict(words)
            events = list(engine.trace)
        assert events
        # Every batch carries the lowest trace id it coalesced, and the
        # ids cover the submitted range without inventing new ones.
        ids = [e.trace_id for e in events]
        assert all(i >= 0 for i in ids)
        assert min(ids) == 0
        assert len(set(ids)) == len(ids)

    def test_publish_log_stamps_latest_trace_id(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x).words
        with ServingEngine(clf, num_workers=1) as engine:
            engine.predict(words)  # some traffic before the publish
            engine.publisher.publish(clf.model)
            engine.predict(words)  # traffic after
            log = engine.publisher.publish_log
            trace = engine.trace
        # Generation 1 (startup) precedes all traffic; the re-publish is
        # stamped with the last pre-publish trace id.
        assert log[0]["generation"] == 1
        assert log[0]["trace_id"] == -1
        assert log[1]["trace_id"] >= 0
        rows = correlate(trace, log)
        assert rows[0]["generation"] == 1
        assert "contention" in render_contention_table(rows)

    def test_correlate_orders_traffic_around_publish(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x).words
        with ServingEngine(clf, num_workers=1) as engine:
            engine.predict(words)
            engine.publisher.publish(clf.model)
            engine.predict(words)
            rows = correlate(engine.trace, engine.publisher)
        by_gen = {row["generation"]: row for row in rows}
        new_gen = max(by_gen)
        assert new_gen >= 2
        published_after = by_gen[new_gen]["published_after_trace"]
        assert published_after is not None
        # The publish barrier: every batch on the new generation serves
        # only requests submitted after the publish was stamped.
        assert by_gen[new_gen]["trace_id_min"] > published_after


class TestFlightRecorderIntegration:
    def test_sigkilled_worker_ring_is_decodable(self, fitted):
        """The headline crash pin: SIGKILL the worker mid-stream, then
        read its last recorded moments out of the engine-owned slab."""
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x).words
        engine = ServingEngine(clf, num_workers=1)
        prefix = engine.config.prefix
        try:
            engine.predict(words)  # real served traffic in the ring
            victim = engine.workers[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5.0)
            events = engine.flight_recorder.postmortem(0)
            names = [e.name for e in events]
            assert "batch_start" in names
            assert "batch_end" in names
            assert "generation_adopt" in names  # adopted gen 1 at startup
            # Timestamps are monotonic within the ring and the rendered
            # post-mortem table is produced without the worker.
            t = [e.t_ns for e in events]
            assert t == sorted(t)
            assert "Flight recorder: worker 0" in engine.flight_recorder.render(0)
        finally:
            engine.stop()
        assert glob.glob(f"/dev/shm/{prefix}*") == []

    def test_deadline_miss_recorded_in_ring(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x[:4]).words
        with ServingEngine(clf, num_workers=1) as engine:
            engine.result(engine.submit(words))  # warm up
            request_id = engine.submit(words, deadline=1e-9)
            assert engine.result(request_id).expired
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                misses = [
                    e for e in engine.flight_recorder.postmortem(0)
                    if e.name == "deadline_miss"
                ]
                if misses:
                    break
                time.sleep(0.01)
        assert misses
        assert misses[0].args[0] == request_id

    def test_all_events_merges_workers(self, fitted):
        task, clf = fitted
        words = clf.encoder.encode_packed(task.test_x).words
        with ServingEngine(clf, num_workers=2) as engine:
            engine.predict(words)
            engine.predict(words)
            events = engine.flight_recorder.all_events()
        assert {e.worker_id for e in events} == {0, 1}
        t = [e.t_ns for e in events]
        assert t == sorted(t)


class TestBitIdentity:
    """Telemetry on vs off must not change a single bit of a seeded run."""

    def test_concurrent_attack_and_recover_identical(self):
        task = make_prototype_classification(
            "tele-live", num_features=16, num_classes=5, num_train=300,
            num_test=200, seed=0,
        )

        def run(telemetry: bool):
            experiment = RecoveryExperiment(
                dataset=task, dim=1_000, epochs=2, levels=16, seed=7
            )
            eval_words = experiment._eval_packed.words
            engine = ServingEngine(
                experiment.classifier, num_workers=2, telemetry=telemetry
            )
            stop = threading.Event()

            def traffic():
                while not stop.is_set():
                    engine.predict(eval_words)

            thread = threading.Thread(target=traffic, daemon=True)
            thread.start()
            try:
                outcome = experiment.attack_and_recover(
                    0.2, config=RecoveryConfig(), passes=2, seed=11,
                    publisher=engine.publisher,
                )
                final = engine.predict(eval_words)
            finally:
                stop.set()
                thread.join()
                engine.stop()
            return outcome, final, experiment.model.class_hv.copy()

        outcome_on, final_on, hv_on = run(telemetry=True)
        outcome_off, final_off, hv_off = run(telemetry=False)
        assert outcome_on.accuracy_trace == outcome_off.accuracy_trace
        assert outcome_on.recovered_accuracy == outcome_off.recovered_accuracy
        assert (final_on == final_off).all()
        assert (hv_on == hv_off).all()
