"""Shared-memory substrate tests: lifecycle, control block, publisher.

The lifecycle tests pin the satellite requirement directly: a worker
killed mid-batch must not leak ``/dev/shm`` entries once the engine is
stopped, and double-close / double-unlink are no-ops on every handle
type.
"""

import glob

import numpy as np
import pytest

from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier, HDCModel
from repro.core.recovery import ModelPublisher
from repro.serve.shm import (
    ControlBlock,
    GenerationPublisher,
    ShmArray,
    attach_generation,
    generation_segment,
    unique_name,
)


def shm_entries(prefix: str) -> list[str]:
    return glob.glob(f"/dev/shm/{prefix}*")


class TestShmArray:
    def test_create_attach_roundtrip(self):
        name = unique_name("repro-test")
        data = np.arange(24, dtype=np.uint64).reshape(4, 6)
        created = ShmArray.create(name, data)
        try:
            attached = ShmArray.attach(name, (4, 6), np.uint64)
            assert (attached.array == data).all()
            assert not attached.array.flags.writeable
            attached.close()
        finally:
            created.unlink()
        assert shm_entries(name) == []

    def test_double_close_is_noop(self):
        name = unique_name("repro-test")
        created = ShmArray.create(name, np.zeros(8, dtype=np.uint64))
        try:
            attached = ShmArray.attach(name, (8,), np.uint64)
            attached.close()
            attached.close()  # second close must not raise
            assert attached.closed
            created.close()
            created.close()
        finally:
            created.unlink()

    def test_double_unlink_is_noop(self):
        name = unique_name("repro-test")
        created = ShmArray.create(name, np.zeros(8, dtype=np.uint64))
        created.unlink()
        created.unlink()  # second unlink must not raise
        assert shm_entries(name) == []

    def test_unlink_after_close_still_destroys(self):
        name = unique_name("repro-test")
        created = ShmArray.create(name, np.zeros(8, dtype=np.uint64))
        created.close()
        assert shm_entries(name)  # segment survives a plain close
        created.unlink()
        assert shm_entries(name) == []

    def test_attacher_never_unlinks(self):
        name = unique_name("repro-test")
        created = ShmArray.create(name, np.zeros(8, dtype=np.uint64))
        try:
            attached = ShmArray.attach(name, (8,), np.uint64)
            attached.unlink()  # non-owner: must only close, not destroy
            assert shm_entries(name)
        finally:
            created.unlink()

    def test_array_after_close_raises(self):
        name = unique_name("repro-test")
        created = ShmArray.create(name, np.zeros(8, dtype=np.uint64))
        created.close()
        with pytest.raises(ValueError, match="closed"):
            created.array
        created.unlink()


class TestControlBlock:
    def test_write_read_roundtrip(self):
        control = ControlBlock.create(unique_name("repro-test"))
        try:
            control.write(generation=3, model_version=7, num_classes=5,
                          dim=1000, publish_ns=123, heartbeat_ns=456,
                          writer_active=1)
            snap = control.read()
            assert snap.generation == 3
            assert snap.model_version == 7
            assert snap.num_classes == 5
            assert snap.dim == 1000
            assert snap.publish_ns == 123
            assert snap.heartbeat_ns == 456
            assert snap.writer_active
        finally:
            control.unlink()

    def test_partial_update_preserves_other_fields(self):
        control = ControlBlock.create(unique_name("repro-test"))
        try:
            control.write(generation=2, dim=640, writer_active=1)
            control.write(heartbeat_ns=999)
            snap = control.read()
            assert snap.generation == 2
            assert snap.dim == 640
            assert snap.heartbeat_ns == 999
        finally:
            control.unlink()

    def test_cross_handle_visibility(self):
        name = unique_name("repro-test")
        writer = ControlBlock.create(name)
        try:
            reader = ControlBlock.attach(name)
            writer.write(generation=9)
            assert reader.read().generation == 9
            reader.close()
        finally:
            writer.unlink()


@pytest.fixture
def trained_model() -> HDCModel:
    rng = np.random.default_rng(0)
    encoder = Encoder(num_features=8, dim=256, levels=8, seed=1)
    clf = HDCClassifier(encoder, num_classes=3, epochs=1, seed=2).fit(
        rng.random((60, 8)), rng.integers(0, 3, 60)
    )
    return clf.model


class TestGenerationPublisher:
    def test_satisfies_model_publisher_protocol(self):
        assert issubclass(GenerationPublisher, ModelPublisher)

    def test_publish_attach_roundtrip(self, trained_model):
        prefix = unique_name("repro-test")
        control = ControlBlock.create(f"{prefix}-control")
        publisher = GenerationPublisher(prefix, control)
        try:
            assert publisher.publish(trained_model) == 1
            segment, packed = attach_generation(prefix, control.read())
            assert (packed.words == trained_model.packed().words).all()
            assert packed.dim == trained_model.dim
            assert not packed.words.flags.writeable
            segment.close()
        finally:
            publisher.close()
            control.unlink()
        assert shm_entries(prefix) == []

    def test_retire_lag_unlinks_superseded_generations(self, trained_model):
        prefix = unique_name("repro-test")
        control = ControlBlock.create(f"{prefix}-control")
        publisher = GenerationPublisher(prefix, control, retire_lag=2)
        try:
            for expected in (1, 2, 3, 4):
                with trained_model.writable() as hv:
                    hv[0, 0] ^= 1
                assert publisher.publish(trained_model) == expected
            # Generations 1 and 2 retired, 3 and 4 still mapped.
            assert shm_entries(generation_segment(prefix, 1)) == []
            assert shm_entries(generation_segment(prefix, 2)) == []
            assert shm_entries(generation_segment(prefix, 3))
            assert shm_entries(generation_segment(prefix, 4))
        finally:
            publisher.close()
            control.unlink()
        assert shm_entries(prefix) == []

    def test_close_is_idempotent(self, trained_model):
        prefix = unique_name("repro-test")
        control = ControlBlock.create(f"{prefix}-control")
        publisher = GenerationPublisher(prefix, control)
        try:
            publisher.publish(trained_model)
            publisher.close()
            publisher.close()  # second close must not raise
        finally:
            control.unlink()
        assert shm_entries(prefix) == []

    def test_touch_and_end_writing_flip_writer_state(self, trained_model):
        prefix = unique_name("repro-test")
        control = ControlBlock.create(f"{prefix}-control")
        publisher = GenerationPublisher(prefix, control)
        try:
            publisher.publish(trained_model)
            assert control.read().writer_active
            publisher.end_writing()
            assert not control.read().writer_active
            before = control.read().heartbeat_ns
            publisher.touch()
            snap = control.read()
            assert snap.writer_active
            assert snap.heartbeat_ns >= before
        finally:
            publisher.close()
            control.unlink()
