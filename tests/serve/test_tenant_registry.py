"""TenantRegistry validation, freeze-on-attach, and lookup semantics."""

import numpy as np
import pytest

from repro.core.encoder import Encoder
from repro.core.model import HDCClassifier, HDCModel
from repro.datasets.synthetic import make_prototype_classification
from repro.serve import TenantRegistry
from repro.serve.registry import DEFAULT_TENANT, Tenant


def _model(dim=256, k=3, seed=0):
    rng = np.random.default_rng(seed)
    return HDCModel(rng.integers(0, 2, size=(k, dim), dtype=np.uint8))


class TestAdd:
    def test_add_and_lookup(self):
        registry = TenantRegistry()
        tenant = registry.add("alpha", _model())
        assert isinstance(tenant, Tenant)
        assert "alpha" in registry
        assert registry["alpha"].model is tenant.model
        assert registry.ids() == ("alpha",)
        assert len(registry) == 1

    def test_registration_order_is_slot_order(self):
        registry = TenantRegistry()
        for name in ("zebra", "alpha", "mid"):
            registry.add(name, _model())
        assert registry.ids() == ("zebra", "alpha", "mid")

    def test_duplicate_rejected(self):
        registry = TenantRegistry.single("a", _model())
        with pytest.raises(ValueError, match="already registered"):
            registry.add("a", _model())

    @pytest.mark.parametrize(
        "bad", ["", "-leading", ".dot", "has space", "x" * 65, "é"]
    )
    def test_invalid_ids_rejected(self, bad):
        with pytest.raises(ValueError, match="tenant_id"):
            TenantRegistry().add(bad, _model())

    def test_classifier_contributes_model_and_encoder(self):
        task = make_prototype_classification(
            "reg", num_features=8, num_classes=3, num_train=60,
            num_test=12, seed=1,
        )
        encoder = Encoder(num_features=8, dim=256, levels=4, seed=2)
        clf = HDCClassifier(encoder, num_classes=3, epochs=1, seed=3).fit(
            task.train_x, task.train_y
        )
        tenant = TenantRegistry().add("c", clf)
        assert tenant.encoder is encoder
        assert isinstance(tenant.model, HDCModel)

    def test_encoder_dim_mismatch_rejected(self):
        encoder = Encoder(num_features=8, dim=128, levels=4, seed=2)
        with pytest.raises(ValueError, match="dim"):
            TenantRegistry().add("a", _model(dim=256), encoder=encoder)

    def test_default_tenant_name(self):
        registry = TenantRegistry.single(DEFAULT_TENANT, _model())
        assert registry.ids() == ("default",)


class TestFreeze:
    def test_attach_freezes_and_assigns_indices(self):
        registry = TenantRegistry()
        registry.add("a", _model(seed=1))
        registry.add("b", _model(seed=2))
        tenants = registry._attach()
        assert registry.attached
        assert [t.index for t in tenants] == [0, 1]
        with pytest.raises(RuntimeError, match="frozen"):
            registry.add("c", _model())
        with pytest.raises(RuntimeError, match="frozen"):
            registry.remove("a")

    def test_double_attach_rejected(self):
        registry = TenantRegistry.single("a", _model())
        registry._attach()
        with pytest.raises(RuntimeError, match="already attached"):
            registry._attach()

    def test_empty_registry_cannot_attach(self):
        with pytest.raises(ValueError, match="no tenants"):
            TenantRegistry()._attach()

    def test_remove_before_attach(self):
        registry = TenantRegistry()
        registry.add("a", _model())
        registry.remove("a")
        assert "a" not in registry
        with pytest.raises(KeyError, match="unknown tenant"):
            registry.remove("a")
